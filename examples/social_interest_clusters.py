"""Personal-interest (social network) associations and cluster export.

The paper's third motivating domain is social-network interest data
("people with high interest in reading and playing tend to have low
interest in music").  This example builds the association hypergraph over a
persona-driven synthetic interest database, finds the strongest mva-type
rules, clusters the interests by associative similarity, and exports both
the hypergraph and the clustering as Graphviz DOT files that can be
rendered with ``dot -Tpng``.

Run with:  python examples/social_interest_clusters.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    AssociationHypergraphBuilder,
    BuildConfig,
    build_similarity_graph,
    cluster_attributes,
)
from repro.data.generators import personal_interest_database
from repro.hypergraph.export import clustering_to_dot, hypergraph_to_dot, write_text
from repro.rules import confidence, support


def main() -> None:
    database, personas = personal_interest_database(num_people=500, seed=13)
    print(
        f"interest database: {database.num_attributes} interests, "
        f"{database.num_observations} people, {len(set(personas))} personas"
    )

    # The paper's example rule: high read + high play => low music.
    rule_support = support(database, {"read": "h", "play": "h"})
    rule_confidence = confidence(database, {"read": "h", "play": "h"}, {"music": "l"})
    print(
        f"rule {{read=h, play=h}} => {{music=l}}: "
        f"support {rule_support:.2f}, confidence {rule_confidence:.2f}"
    )

    config = BuildConfig(name="interests", k=3, gamma_edge=1.02, gamma_hyperedge=1.01)
    hypergraph = AssociationHypergraphBuilder(config).build(database)
    print(
        f"association hypergraph: {len(hypergraph.simple_edges())} directed edges, "
        f"{len(hypergraph.two_to_one_edges())} 2-to-1 hyperedges"
    )
    top = sorted(hypergraph.edges(), key=lambda e: e.weight, reverse=True)[:5]
    for edge in top:
        print(f"  {edge}")

    # Cluster the interests by associative similarity and export everything.
    graph = build_similarity_graph(hypergraph)
    clustering = cluster_attributes(graph, t=2)
    print("interest clusters:")
    for center, members in clustering.clusters.items():
        print(f"  {center}: {', '.join(sorted(members))}")

    out_dir = Path("example_output")
    out_dir.mkdir(exist_ok=True)
    hypergraph_path = write_text(
        hypergraph_to_dot(hypergraph, max_edges=20), out_dir / "interest_hypergraph.dot"
    )
    clusters_path = write_text(
        clustering_to_dot(clustering), out_dir / "interest_clusters.dot"
    )
    print(f"wrote {hypergraph_path} and {clusters_path} (render with: dot -Tpng <file>)")


if __name__ == "__main__":
    main()
