"""Tests for the Apriori frequent-itemset and rule-generation baseline."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.exceptions import RuleError
from repro.rules.apriori import apriori, generate_rules
from repro.rules.measures import confidence, support


def basket_db():
    """A small market-basket style database (1 = bought, 0 = not bought)."""
    rows = [
        # milk, diapers, beer, eggs
        [1, 1, 1, 1],
        [1, 1, 1, 0],
        [1, 0, 1, 0],
        [0, 1, 0, 1],
        [1, 1, 1, 1],
        [0, 1, 0, 0],
        [1, 1, 1, 0],
        [1, 0, 0, 0],
    ]
    return Database(["milk", "diapers", "beer", "eggs"], rows)


class TestApriori:
    def test_all_itemsets_meet_min_support(self):
        db = basket_db()
        for itemset in apriori(db, min_support=0.4):
            assert support(db, itemset.as_assignment()) >= 0.4

    def test_supports_are_correct(self):
        db = basket_db()
        itemsets = {frozenset(i.items): i.support for i in apriori(db, min_support=0.25)}
        assert itemsets[frozenset({("milk", 1), ("beer", 1)})] == pytest.approx(5 / 8)

    def test_downward_closure(self):
        """Every subset of a frequent itemset is itself frequent (Apriori property)."""
        db = basket_db()
        frequent = {frozenset(i.items) for i in apriori(db, min_support=0.3)}
        for itemset in frequent:
            if len(itemset) > 1:
                for item in itemset:
                    assert (itemset - {item}) in frequent

    def test_max_size_cap(self):
        db = basket_db()
        assert all(len(i) <= 2 for i in apriori(db, min_support=0.1, max_size=2))

    def test_higher_support_yields_fewer_itemsets(self):
        db = basket_db()
        low = apriori(db, min_support=0.2)
        high = apriori(db, min_support=0.6)
        assert len(high) <= len(low)

    def test_invalid_min_support(self):
        with pytest.raises(RuleError):
            apriori(basket_db(), min_support=0.0)

    def test_invalid_max_size(self):
        with pytest.raises(RuleError):
            apriori(basket_db(), min_support=0.5, max_size=0)

    def test_multi_valued_attributes_supported(self):
        db = Database(["A", "B"], [[1, "x"], [1, "x"], [2, "y"], [1, "y"]])
        itemsets = apriori(db, min_support=0.5)
        assert any(dict(i.items) == {"A": 1} for i in itemsets)

    def test_no_itemset_assigns_two_values_to_one_attribute(self):
        db = basket_db()
        for itemset in apriori(db, min_support=0.1):
            attributes = [a for a, _ in itemset.items]
            assert len(attributes) == len(set(attributes))


class TestCandidateJoin:
    def test_candidate_counts_match_naive_join(self):
        """Regression test for the hoisted frequent-set construction: the
        optimized join must produce exactly the candidates (and counts) of a
        straightforward reference implementation at every level."""
        from itertools import combinations

        from repro.rules.apriori import _candidate_join

        db = basket_db()

        def naive_join(frequent, size):
            frequent_set = set(frequent)
            out = set()
            for a, b in combinations(frequent, 2):
                union = a | b
                if len(union) != size:
                    continue
                if len({attr for attr, _ in union}) != size:
                    continue
                if all(
                    frozenset(s) in frequent_set
                    for s in combinations(union, size - 1)
                ):
                    out.add(union)
            return out

        for min_support in (0.2, 0.3, 0.5):
            level = [
                frozenset(i.items)
                for i in apriori(db, min_support=min_support, max_size=1)
            ]
            size = 2
            while level:
                expected = naive_join(level, size)
                fast = _candidate_join(level, size)
                assert fast == expected
                level = [
                    c for c in fast if support(db, dict(c)) >= min_support
                ]
                size += 1

    def test_known_pair_candidate_count(self):
        from repro.rules.apriori import _candidate_join

        db = basket_db()
        singles = [frozenset(i.items) for i in apriori(db, min_support=0.4, max_size=1)]
        # 4 frequent single items at 0.4 support (milk=1, diapers=1, beer=1,
        # eggs=0), each on a distinct attribute -> C(4, 2) = 6 candidates.
        assert len(singles) == 4
        pairs = _candidate_join(singles, 2)
        assert len(pairs) == 6
        assert all(len(p) == 2 for p in pairs)


class TestGenerateRules:
    def test_rules_meet_min_confidence(self):
        db = basket_db()
        itemsets = apriori(db, min_support=0.3)
        for rule, _supp, conf in generate_rules(db, itemsets, min_confidence=0.7):
            assert conf >= 0.7
            assert confidence(db, rule.antecedent_items, rule.consequent_items) == pytest.approx(
                conf
            )

    def test_rules_sorted_by_confidence(self):
        db = basket_db()
        rules = generate_rules(db, apriori(db, min_support=0.25), min_confidence=0.3)
        confidences = [conf for _r, _s, conf in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_classic_milk_diapers_beer_rule_found(self):
        db = basket_db()
        rules = generate_rules(db, apriori(db, min_support=0.3), min_confidence=0.9)
        assert any(
            rule.antecedent_items == {"milk": 1, "diapers": 1}
            and rule.consequent_items == {"beer": 1}
            for rule, _s, _c in rules
        )

    def test_invalid_min_confidence(self):
        with pytest.raises(RuleError):
            generate_rules(basket_db(), [], min_confidence=1.5)
