"""Tests for support, confidence, lift, and leverage (Definition 3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.rules.measures import (
    confidence,
    leverage,
    lift,
    rule_confidence,
    rule_support,
    support,
)
from repro.rules.rule import MvaRule


def toy_db():
    return Database(
        ["A", "B", "C"],
        [[1, 1, 1], [1, 1, 2], [1, 2, 1], [2, 2, 2], [2, 1, 1], [1, 1, 1]],
    )


class TestSupportAndConfidence:
    def test_support(self):
        assert support(toy_db(), {"A": 1}) == pytest.approx(4 / 6)
        assert support(toy_db(), {"A": 1, "B": 1}) == pytest.approx(3 / 6)

    def test_confidence(self):
        assert confidence(toy_db(), {"A": 1}, {"B": 1}) == pytest.approx(3 / 4)

    def test_confidence_zero_support_antecedent(self):
        assert confidence(toy_db(), {"A": 9}, {"B": 1}) == 0.0

    def test_rule_wrappers(self):
        rule = MvaRule({"A": 1}, {"B": 1})
        assert rule_support(toy_db(), rule) == pytest.approx(0.5)
        assert rule_confidence(toy_db(), rule) == pytest.approx(0.75)

    def test_market_basket_special_case(self):
        """Boolean support/confidence are the 0/1-valued special case of Definition 3.2."""
        db = Database(["milk", "beer"], [[1, 1], [1, 0], [0, 1], [1, 1]])
        assert support(db, {"milk": 1, "beer": 1}) == pytest.approx(0.5)
        assert confidence(db, {"milk": 1}, {"beer": 1}) == pytest.approx(2 / 3)


class TestDerivedMeasures:
    def test_lift(self):
        db = toy_db()
        expected = confidence(db, {"A": 1}, {"B": 1}) / support(db, {"B": 1})
        assert lift(db, {"A": 1}, {"B": 1}) == pytest.approx(expected)

    def test_lift_zero_consequent_support(self):
        assert lift(toy_db(), {"A": 1}, {"B": 9}) == 0.0

    def test_leverage_sign(self):
        db = toy_db()
        value = leverage(db, {"A": 1}, {"B": 1})
        assert value == pytest.approx(0.5 - (4 / 6) * (4 / 6))


@st.composite
def small_database(draw):
    num_rows = draw(st.integers(2, 30))
    rows = [
        [draw(st.integers(1, 3)), draw(st.integers(1, 3)), draw(st.integers(1, 3))]
        for _ in range(num_rows)
    ]
    return Database(["A", "B", "C"], rows)


class TestMeasureProperties:
    @given(db=small_database(), a=st.integers(1, 3), b=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_confidence_and_support_in_unit_interval(self, db, a, b):
        supp = support(db, {"A": a, "B": b})
        conf = confidence(db, {"A": a}, {"B": b})
        assert 0.0 <= supp <= 1.0
        assert 0.0 <= conf <= 1.0

    @given(db=small_database(), a=st.integers(1, 3), b=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_joint_support_never_exceeds_antecedent_support(self, db, a, b):
        assert support(db, {"A": a, "B": b}) <= support(db, {"A": a}) + 1e-12

    @given(db=small_database(), a=st.integers(1, 3), b=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_confidence_definition(self, db, a, b):
        supp_x = support(db, {"A": a})
        if supp_x > 0:
            assert confidence(db, {"A": a}, {"B": b}) == pytest.approx(
                support(db, {"A": a, "B": b}) / supp_x
            )
