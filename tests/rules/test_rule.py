"""Unit tests for mva-type association rules."""

from __future__ import annotations

import pytest

from repro.exceptions import RuleError
from repro.rules.rule import MvaRule, item_attributes


class TestConstruction:
    def test_basic(self):
        rule = MvaRule({"A": 3, "C": 12}, {"B": 13})
        assert rule.antecedent_items == {"A": 3, "C": 12}
        assert rule.consequent_items == {"B": 13}

    def test_empty_antecedent_rejected(self):
        with pytest.raises(RuleError):
            MvaRule({}, {"B": 1})

    def test_empty_consequent_rejected(self):
        with pytest.raises(RuleError):
            MvaRule({"A": 1}, {})

    def test_overlapping_attributes_rejected(self):
        with pytest.raises(RuleError):
            MvaRule({"A": 1}, {"A": 2})

    def test_hashable_and_equal(self):
        a = MvaRule({"A": 1, "B": 2}, {"C": 3})
        b = MvaRule({"B": 2, "A": 1}, {"C": 3})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestViews:
    def test_attribute_projections(self):
        rule = MvaRule({"A": 1, "B": 2}, {"C": 3})
        assert rule.antecedent_attributes == frozenset({"A", "B"})
        assert rule.consequent_attributes == frozenset({"C"})
        assert rule.attributes == frozenset({"A", "B", "C"})

    def test_combined_items(self):
        rule = MvaRule({"A": 1}, {"B": 2})
        assert rule.combined_items() == {"A": 1, "B": 2}

    def test_repr_is_readable(self):
        assert "=>" in repr(MvaRule({"A": 1}, {"B": 2}))

    def test_item_attributes_helper(self):
        assert item_attributes({"X": 1, "Y": 2}) == frozenset({"X", "Y"})
