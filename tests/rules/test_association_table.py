"""Tests for association tables (Definition 3.6(2), Table 3.7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.exceptions import RuleError
from repro.rules.association_table import AssociationTable, build_association_table


def toy_db():
    return Database(
        ["A1", "A2", "A3"],
        [
            [1, 1, 2],
            [1, 1, 2],
            [1, 1, 1],
            [1, 2, 1],
            [2, 1, 3],
            [2, 1, 3],
            [2, 2, 1],
            [2, 2, 1],
        ],
    )


class TestBuildAssociationTable:
    def test_rows_cover_only_occurring_combinations(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        assert len(table.rows) == 4  # (1,1), (1,2), (2,1), (2,2)

    def test_row_contents(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        row = table.row_for({"A1": 1, "A2": 1})
        assert row.support == pytest.approx(3 / 8)
        assert row.head_values == (2,)
        assert row.confidence == pytest.approx(2 / 3)

    def test_supports_sum_to_one(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        assert sum(row.support for row in table.rows) == pytest.approx(1.0)

    def test_single_tail(self):
        table = build_association_table(toy_db(), ["A1"], ["A3"])
        row = table.row_for({"A1": 2})
        assert row.support == pytest.approx(0.5)

    def test_row_for_missing_combination(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        assert table.row_for({"A1": 9, "A2": 9}) is None

    def test_row_for_values(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        assert table.row_for_values((1, 2)).head_values == (1,)

    def test_row_for_missing_tail_attribute_raises(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        with pytest.raises(RuleError):
            table.row_for({"A1": 1})

    def test_overlapping_tail_head_rejected(self):
        with pytest.raises(RuleError):
            build_association_table(toy_db(), ["A1"], ["A1"])

    def test_unknown_attribute_rejected(self):
        with pytest.raises(RuleError):
            build_association_table(toy_db(), ["A1"], ["Z"])

    def test_empty_tail_rejected(self):
        with pytest.raises(RuleError):
            build_association_table(toy_db(), [], ["A3"])

    def test_empty_database_gives_empty_table(self):
        db = Database(["A", "B"], [])
        table = build_association_table(db, ["A"], ["B"])
        assert table.rows == ()
        assert table.acv() == 0.0


class TestTableQueries:
    def test_acv_is_sum_of_contributions(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        assert table.acv() == pytest.approx(sum(r.contribution for r in table.rows))

    def test_best_row(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        best = table.best_row()
        assert best.contribution == max(r.contribution for r in table.rows)

    def test_best_row_empty_table(self):
        table = AssociationTable(("A",), ("B",), ())
        assert table.best_row() is None

    def test_to_rules(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        rules = table.to_rules()
        assert len(rules) == len(table.rows)
        assert all(rule.consequent_attributes == frozenset({"A3"}) for rule in rules)

    def test_dict_round_trip(self):
        table = build_association_table(toy_db(), ["A1", "A2"], ["A3"])
        rebuilt = AssociationTable.from_dict(table.to_dict())
        assert rebuilt == table


@st.composite
def discrete_database(draw):
    num_rows = draw(st.integers(1, 40))
    k = draw(st.integers(2, 4))
    rows = [
        [draw(st.integers(1, k)), draw(st.integers(1, k)), draw(st.integers(1, k))]
        for _ in range(num_rows)
    ]
    return Database(["X", "Y", "Z"], rows)


class TestTableProperties:
    @given(db=discrete_database())
    @settings(max_examples=60, deadline=None)
    def test_acv_in_unit_interval(self, db):
        table = build_association_table(db, ["X", "Y"], ["Z"])
        assert 0.0 <= table.acv() <= 1.0 + 1e-9

    @given(db=discrete_database())
    @settings(max_examples=60, deadline=None)
    def test_row_confidences_at_least_uniform(self, db):
        """The most frequent head value's confidence is at least 1 / (number of distinct values)."""
        table = build_association_table(db, ["X"], ["Z"])
        distinct = max(1, len(set(db.column("Z"))))
        for row in table.rows:
            assert row.confidence >= 1.0 / distinct - 1e-9

    @given(db=discrete_database())
    @settings(max_examples=60, deadline=None)
    def test_supports_sum_to_one(self, db):
        table = build_association_table(db, ["X", "Y"], ["Z"])
        assert sum(r.support for r in table.rows) == pytest.approx(1.0)
