"""Persisted count-state checkpoints: O(delta) γ-recovery, exact parity.

The storage layer persists the engine's per-candidate contingency count
arrays (base archive at create/compact, dirty-head archives at every
delta checkpoint).  Recovery adopts them after WAL replay, so the first
refresh catches each candidate up incrementally instead of rebuilding it
from the row store.  The invariants:

* adopted-and-caught-up count arrays are **bit-identical** to those of a
  never-persisted twin (hypothesis-checked over random interleavings);
* a compacted-then-reopened engine performs **zero** count rebuilds;
* archives from an older value domain are discarded, not misapplied.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BuildConfig
from repro.engine import AssociationEngine
from repro.engine.counts import load_count_states
from repro.exceptions import EngineError, StorageCorruptionError
from repro.storage import DurableEngine, read_manifest

CONFIG = BuildConfig(
    name="count-state-test",
    k=2,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.4,
    include_hyperedges=True,
)

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = (0, 1, 2)


def row_batches():
    return st.lists(
        st.lists(
            st.sampled_from(VALUES),
            min_size=len(ATTRIBUTES),
            max_size=len(ATTRIBUTES),
        ),
        min_size=1,
        max_size=4,
    )


def assert_counts_bit_identical(recovered: AssociationEngine, twin: AssociationEngine):
    """Refresh both engines and compare every count state exactly."""
    # Adoption is lazy; exporting forces any staged archive to materialize
    # (a refresh alone would skip it when nothing is dirty).
    recovered.export_count_states()
    recovered.refresh()
    twin.refresh()
    assert set(recovered._tables) == set(twin._tables)
    for key, twin_state in twin._tables.items():
        state = recovered._tables[key]
        if state.max_sum is None:  # adopted but not yet consulted
            state.derive()
        assert np.array_equal(state.counts, twin_state.counts), key
        assert state.max_sum == twin_state.max_sum, key
        assert state.upto == twin_state.upto, key
    assert set(recovered._head_counts) == set(twin._head_counts)
    for attribute, twin_state in twin._head_counts.items():
        state = recovered._head_counts[attribute]
        if state.max_sum is None:
            state.derive()
        assert np.array_equal(state.counts, twin_state.counts), attribute
        assert state.max_sum == twin_state.max_sum, attribute


class TestRecoveredCountParity:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_recovered_counts_match_never_persisted_twin(self, data):
        ops = data.draw(
            st.lists(
                st.sampled_from(("append", "checkpoint", "compact", "reopen")),
                min_size=1,
                max_size=8,
            )
        )
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "store"
            durable = DurableEngine.create(
                directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
            )
            twin = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
            try:
                for op in ops:
                    if op == "append":
                        batch = data.draw(row_batches())
                        durable.append_rows(batch)
                        twin.append_rows(batch)
                    elif op == "checkpoint":
                        durable.checkpoint()
                    elif op == "compact":
                        durable.compact()
                    else:
                        durable.close()
                        durable = DurableEngine.open(directory)
                durable.close()
                durable = DurableEngine.open(directory)
                assert_counts_bit_identical(durable.engine, twin)
                assert durable.stats() == twin.stats()
            finally:
                durable.close()


class TestRecoveryIsODelta:
    def seeded(self, tmp_path):
        durable = DurableEngine.create(
            tmp_path / "store", attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        durable.append_rows([[0, 1, 2, 0], [1, 1, 0, 2], [2, 0, 1, 1], [0, 0, 0, 0]])
        return durable

    def test_compacted_reopen_rebuilds_nothing(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.checkpoint()
        durable.compact()
        durable.close()
        recovered = DurableEngine.open(tmp_path / "store")
        # Adoption is lazy: the archive is staged at open and merged by
        # the first refresh that would otherwise rebuild from rows — a
        # session that never refreshes never reads it.
        assert recovered.counters.count_states_restored == 0
        recovered.refresh()
        assert recovered.counters.count_states_restored == 0
        # One appended row dirties the heads; the following refresh adopts
        # the staged states and increments them instead of rebuilding.
        recovered.append_rows([[1, 0, 2, 1]])
        recovered.refresh()
        assert recovered.counters.count_states_restored > 0
        counters = recovered.engine.counters
        assert counters.table_rebuilds == 0
        assert counters.table_increments > 0

    def test_wal_tail_recovery_increments_instead_of_rebuilding(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.checkpoint()
        durable.compact()
        durable.append_rows([[1, 2, 0, 1], [2, 2, 2, 2]])  # tail, never checkpointed
        durable.close()
        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.counters.recovered_rows == 2
        recovered.refresh()
        counters = recovered.engine.counters
        assert counters.table_rebuilds == 0
        assert counters.table_increments > 0

    def test_delta_checkpoint_persists_only_dirty_head_counts(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.checkpoint()
        durable.append_rows([[0, 1, 2, 1]])
        result = durable.checkpoint()
        if not result.dirty_heads:
            pytest.skip("append left every head signature unchanged")
        manifest = read_manifest(tmp_path / "store")
        entry = manifest.deltas[-1]
        assert entry.counts_file is not None
        archive = load_count_states(tmp_path / "store" / entry.counts_file)
        heads = {key[0] for key in archive.states}
        dirty = {ATTRIBUTES.index(h) for h in result.dirty_heads}
        assert heads == dirty
        durable.close()

    def test_domain_growth_in_tail_discards_stale_archives(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.checkpoint()
        durable.compact()
        # 7 is outside the initial domain: every stored code shifts, so
        # the persisted arrays describe a dead code space.
        durable.append_rows([[7, 0, 1, 2]])
        durable.close()
        twin = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
        twin.append_rows([[0, 1, 2, 0], [1, 1, 0, 2], [2, 0, 1, 1], [0, 0, 0, 0]])
        twin.append_rows([[7, 0, 1, 2]])
        recovered = DurableEngine.open(tmp_path / "store")
        assert_counts_bit_identical(recovered.engine, twin)
        # The stale archives were read but discarded, not misapplied.
        assert recovered.counters.count_states_restored == 0
        assert recovered.stats() == twin.stats()

    def test_corrupt_counts_archive_is_typed_error(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.checkpoint()
        durable.compact()
        durable.close()
        manifest = read_manifest(tmp_path / "store")
        counts_path = tmp_path / "store" / (manifest.base_file + ".counts.npz")
        data = bytearray(counts_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        counts_path.write_bytes(bytes(data))
        with pytest.raises(StorageCorruptionError):
            DurableEngine.open(tmp_path / "store")


class TestAdoptionValidation:
    def test_adopt_rejects_impossible_upto(self):
        engine = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
        engine.append_rows([[0, 1, 2, 0]])
        counts = np.zeros((len(VALUES), len(VALUES)), dtype=np.int64)
        with pytest.raises(EngineError, match="absorbed"):
            engine.adopt_count_states({(0, 1): (counts, 5)})

    def test_adopt_rejects_wrong_shape(self):
        engine = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
        engine.append_rows([[0, 1, 2, 0]])
        counts = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(EngineError, match="shape"):
            engine.adopt_count_states({(0, 1): (counts, 1)})

    def test_adopt_rejects_unknown_attribute_index(self):
        engine = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
        counts = np.zeros(len(VALUES), dtype=np.int64)
        with pytest.raises(EngineError, match="outside"):
            engine.adopt_count_states({(9,): (counts, 0)})
