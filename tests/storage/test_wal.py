"""Write-ahead log: framing, segment rolling, torn-tail healing, corruption."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageCorruptionError, StorageError
from repro.storage.wal import (
    MARKER_RECORD,
    ROWS_RECORD,
    WalPosition,
    WriteAheadLog,
)


def segment_paths(wal):
    return sorted(wal.directory.glob("wal-*.log"))


class TestAppendReplay:
    def test_round_trip_preserves_payloads_and_types(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        payloads = [b"first", b"", b"third" * 100]
        for i, payload in enumerate(payloads):
            wal.append(ROWS_RECORD if i % 2 == 0 else MARKER_RECORD, payload)
        wal.close()

        reopened = WriteAheadLog.open(tmp_path / "wal")
        records = list(reopened.replay())
        assert [r.payload for r in records] == payloads
        assert [r.record_type for r in records] == [
            ROWS_RECORD,
            MARKER_RECORD,
            ROWS_RECORD,
        ]
        # Record end positions are strictly increasing and land on the tail.
        ends = [r.end for r in records]
        assert ends == sorted(ends)
        assert ends[-1] == reopened.tail

    def test_replay_from_position_skips_earlier_records(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(ROWS_RECORD, b"one")
        middle = wal.tail
        wal.append(ROWS_RECORD, b"two")
        wal.append(ROWS_RECORD, b"three")
        assert [r.payload for r in wal.replay(middle)] == [b"two", b"three"]
        assert [r.payload for r in wal.replay(wal.tail)] == []

    def test_create_refuses_existing_segments(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(ROWS_RECORD, b"x")
        wal.close()
        with pytest.raises(StorageError, match="already holds"):
            WriteAheadLog.create(tmp_path / "wal")

    def test_open_missing_directory_is_corruption(self, tmp_path):
        with pytest.raises(StorageCorruptionError, match="missing"):
            WriteAheadLog.open(tmp_path / "nope")

    def test_bad_record_type_rejected(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        with pytest.raises(StorageError, match="record type"):
            wal.append(0, b"payload")


class TestSegmentRolling:
    def test_appends_roll_and_replay_crosses_segments(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", segment_bytes=64)
        payloads = [f"payload-{i}".encode() for i in range(20)]
        for payload in payloads:
            wal.append(ROWS_RECORD, payload)
        wal.close()
        assert len(segment_paths(wal)) > 1

        reopened = WriteAheadLog.open(tmp_path / "wal", segment_bytes=64)
        assert [r.payload for r in reopened.replay()] == payloads
        assert reopened.tail == wal.tail

    def test_roll_creates_empty_segment_eagerly(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(ROWS_RECORD, b"x")
        position = wal.roll()
        assert position.offset == 0
        assert segment_paths(wal)[-1].stat().st_size == 0
        # The empty tail segment pins the position across delete + reopen.
        wal.delete_segments_before(position.segment)
        wal.close()
        assert WriteAheadLog.open(tmp_path / "wal").tail == position

    def test_total_bytes_since_position(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", segment_bytes=64)
        for i in range(12):
            wal.append(ROWS_RECORD, f"pay-{i:04d}".encode())
        since = WalPosition(1, 30)
        assert wal.total_bytes() > wal.total_bytes(since=since) > 0
        assert wal.total_bytes(since=wal.tail) == 0


class TestTornTail:
    def fill(self, tmp_path, n=6):
        wal = WriteAheadLog.create(tmp_path / "wal")
        for i in range(n):
            wal.append(ROWS_RECORD, f"record-{i}".encode())
        wal.close()
        return wal

    def test_truncated_tail_heals_to_prefix(self, tmp_path):
        wal = self.fill(tmp_path)
        path = segment_paths(wal)[-1]
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # torn final frame

        healed = WriteAheadLog.open(tmp_path / "wal")
        records = [r.payload for r in healed.replay()]
        assert records == [f"record-{i}".encode() for i in range(5)]
        # The file was physically truncated at the first bad frame.
        assert path.stat().st_size == healed.tail.offset

    def test_corrupt_mid_segment_truncates_to_prefix(self, tmp_path):
        wal = self.fill(tmp_path)
        path = segment_paths(wal)[-1]
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip a byte mid-log
        path.write_bytes(bytes(data))

        healed = WriteAheadLog.open(tmp_path / "wal")
        records = [r.payload for r in healed.replay()]
        # A consistent prefix: nothing after the damage survives, nothing
        # before it is lost.
        assert records == [f"record-{i}".encode() for i in range(len(records))]
        assert len(records) < 6

    def test_healed_log_accepts_new_appends(self, tmp_path):
        wal = self.fill(tmp_path, n=3)
        path = segment_paths(wal)[-1]
        path.write_bytes(path.read_bytes()[:-2])
        healed = WriteAheadLog.open(tmp_path / "wal")
        healed.append(ROWS_RECORD, b"after-heal")
        healed.close()
        final = [r.payload for r in WriteAheadLog.open(tmp_path / "wal").replay()]
        assert final == [b"record-0", b"record-1", b"after-heal"]

    def test_damage_before_last_segment_raises(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", segment_bytes=64)
        for i in range(20):
            wal.append(ROWS_RECORD, f"payload-{i}".encode())
        wal.close()
        first = segment_paths(wal)[0]
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(StorageCorruptionError, match="interior history"):
            WriteAheadLog.open(tmp_path / "wal", segment_bytes=64)

    def test_missing_interior_segment_raises(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", segment_bytes=64)
        for i in range(20):
            wal.append(ROWS_RECORD, f"payload-{i}".encode())
        wal.close()
        paths = segment_paths(wal)
        assert len(paths) >= 3
        paths[1].unlink()  # lose a middle segment entirely
        with pytest.raises(StorageCorruptionError, match="not contiguous"):
            WriteAheadLog.open(tmp_path / "wal", segment_bytes=64)

    def test_oversized_payload_is_refused_at_append(self, tmp_path, monkeypatch):
        import repro.storage.wal as wal_module

        monkeypatch.setattr(wal_module, "_MAX_PAYLOAD", 16)
        wal = WriteAheadLog.create(tmp_path / "wal")
        with pytest.raises(StorageError, match="frame ceiling"):
            wal.append(ROWS_RECORD, b"x" * 17)
        # Nothing was written: the log replays empty.
        wal.close()
        assert list(WriteAheadLog.open(tmp_path / "wal").replay()) == []
