"""Property tests: random op interleavings and random byte-level damage.

Two invariants, checked over hypothesis-generated scenarios:

* **Twin parity** — any interleaving of ``append`` / ``checkpoint`` /
  ``compact`` / ``reopen`` leaves the durable engine bit-identical to an
  in-memory engine that received the same appends (checkpoints, compacts,
  and reopens must be invisible to query results).
* **Fail-safe recovery** — after truncating or flipping bytes anywhere in
  the persisted state, ``open()`` either reconstructs a consistent batch
  prefix of the history or raises
  :class:`~repro.exceptions.StorageCorruptionError`.  It never serves a
  state that matches *no* prefix.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BuildConfig
from repro.engine import AssociationEngine
from repro.exceptions import StorageCorruptionError
from repro.storage import DurableEngine

CONFIG = BuildConfig(
    name="crash-test",
    k=2,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.4,
    include_hyperedges=True,
)

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = (0, 1, 2)


def row_batches():
    return st.lists(
        st.lists(st.sampled_from(VALUES), min_size=len(ATTRIBUTES), max_size=len(ATTRIBUTES)),
        min_size=1,
        max_size=4,
    )


def assert_same_answers(durable, twin):
    """Exact equality across every query layer plus model state."""
    assert durable.num_observations == twin.num_observations
    durable_graph = durable.hypergraph
    twin_graph = twin.hypergraph
    for head in ATTRIBUTES:
        assert [
            (e.key(), e.weight) for e in durable_graph.in_edges(head)
        ] == [(e.key(), e.weight) for e in twin_graph.in_edges(head)]
    assert durable.stats() == twin.stats()
    for i, a in enumerate(ATTRIBUTES):
        for b in ATTRIBUTES[i + 1 :]:
            assert durable.similarity(a, b) == twin.similarity(a, b)
    assert durable.clusters(t=2) == twin.clusters(t=2)
    for algorithm in ("set-cover", "greedy"):
        assert durable.dominators(algorithm=algorithm) == twin.dominators(
            algorithm=algorithm
        )
    if twin.num_observations:
        evidence = {a: twin._store.row_values(0)[a] for a in ATTRIBUTES[:2]}
        assert durable.classify(evidence) == twin.classify(evidence)


class TestInterleavedOpsParity:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_any_interleaving_matches_in_memory_twin(self, data):
        ops = data.draw(
            st.lists(
                st.sampled_from(("append", "checkpoint", "compact", "reopen")),
                min_size=1,
                max_size=8,
            )
        )
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "store"
            durable = DurableEngine.create(
                directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
            )
            twin = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
            try:
                for op in ops:
                    if op == "append":
                        batch = data.draw(row_batches())
                        durable.append_rows(batch)
                        twin.append_rows(batch)
                    elif op == "checkpoint":
                        durable.checkpoint()
                    elif op == "compact":
                        durable.compact()
                    else:  # reopen
                        durable.close()
                        durable = DurableEngine.open(directory)
                assert_same_answers(durable, twin)
                # And once more through a final close/open cycle.
                durable.close()
                durable = DurableEngine.open(directory)
                assert_same_answers(durable, twin)
            finally:
                durable.close()


def damage(path: Path, mode: str, fraction: float) -> bool:
    """Apply one corruption to ``path``; returns False when inapplicable."""
    data = bytearray(path.read_bytes())
    if not data:
        return False
    if mode == "truncate":
        cut = max(1, int(len(data) * fraction))
        path.write_bytes(bytes(data[: len(data) - cut]))
    else:
        position = min(len(data) - 1, int(len(data) * fraction))
        data[position] ^= 0xFF
        path.write_bytes(bytes(data))
    return True


class TestByteLevelDamage:
    """Truncate/flip at arbitrary offsets; recovery is prefix-or-typed-error."""

    #: Batches of the fixed scenario: base holds the first, checkpoint
    #: covers the second, the third lives only in the log tail.
    BATCHES = (
        [[0, 1, 2, 0], [1, 1, 0, 2], [2, 0, 1, 1], [0, 0, 2, 2]],
        [[1, 2, 0, 0], [2, 2, 1, 0], [0, 1, 1, 2]],
        [[2, 1, 2, 1], [1, 0, 0, 1]],
    )

    def build_scenario(self, directory: Path) -> None:
        engine = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
        engine.append_rows(self.BATCHES[0])
        durable = DurableEngine.create(directory, engine=engine)
        durable.append_rows(self.BATCHES[1])
        durable.checkpoint()
        durable.append_rows(self.BATCHES[2])
        durable.close()

    def prefix_twins(self):
        """The in-memory twins of every consistent batch prefix."""
        twins = {}
        rows: list[list[int]] = []
        for cut in range(len(self.BATCHES) + 1):
            twin = AssociationEngine(ATTRIBUTES, CONFIG, values=VALUES)
            if rows:
                twin.append_rows(list(rows))
            twins[len(rows)] = twin
            if cut < len(self.BATCHES):
                rows.extend(self.BATCHES[cut])
        return twins

    @given(
        target=st.sampled_from(
            ("wal", "delta", "base", "sidecar", "manifest")
        ),
        mode=st.sampled_from(("truncate", "flip")),
        fraction=st.floats(0.0, 0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovery_is_prefix_or_typed_error(self, target, mode, fraction):
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "store"
            self.build_scenario(directory)
            if target == "wal":
                victim = sorted((directory / "wal").glob("wal-*.log"))[-1]
            elif target == "delta":
                victim = sorted(directory.glob("delta-*.npz"))[-1]
            elif target == "base":
                victim = sorted(directory.glob("base-*.json"))[-1]
            elif target == "sidecar":
                victim = sorted(directory.glob("base-*.json.npz"))[-1]
            else:
                victim = directory / "MANIFEST.json"
            assert damage(victim, mode, fraction)

            try:
                recovered = DurableEngine.open(directory)
            except StorageCorruptionError:
                return  # typed refusal: acceptable for any damage
            twins = self.prefix_twins()
            assert recovered.num_observations in twins, (
                f"recovered {recovered.num_observations} rows, which is no "
                f"batch prefix of {sorted(twins)}"
            )
            assert_same_answers(recovered, twins[recovered.num_observations])
