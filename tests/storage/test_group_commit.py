"""Group-commit semantics: batched fsyncs, durable tail, explicit flush."""

from __future__ import annotations

import pytest

from repro.core.config import BuildConfig
from repro.exceptions import StorageError
from repro.storage import DurableEngine, GroupCommitWindow, WriteAheadLog

CONFIG = BuildConfig(
    name="group-commit-test",
    k=3,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.5,
    include_hyperedges=False,
)

#: A window no test waits out: only the batch cap can trigger the fsync.
WIDE = GroupCommitWindow(fsync_interval_ms=60_000.0, max_unsynced_batches=8)


class TestWindowValidation:
    def test_rejects_negative_interval(self):
        with pytest.raises(StorageError, match="non-negative"):
            GroupCommitWindow(fsync_interval_ms=-1.0)

    def test_rejects_zero_batch_cap(self):
        with pytest.raises(StorageError, match="at least 1"):
            GroupCommitWindow(max_unsynced_batches=0)

    def test_durable_engine_requires_sync_mode(self, tmp_path):
        with pytest.raises(StorageError, match="sync=True"):
            DurableEngine.create(
                tmp_path / "store",
                attributes=("A", "B"),
                config=CONFIG,
                group_commit=WIDE,
            )


class TestBatchedFsyncs:
    def test_per_append_sync_fsyncs_every_record(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", sync=True)
        for i in range(6):
            wal.append(1, b"payload %d" % i)
        assert wal.syncs == 6
        assert wal.durable_tail == wal.tail

    def test_window_batches_fsyncs_under_batch_cap(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", sync=True, group_commit=WIDE)
        for i in range(WIDE.max_unsynced_batches - 1):
            wal.append(1, b"payload %d" % i)
        assert wal.syncs == 0
        assert wal.durable_tail < wal.tail
        # The cap-th append forces the covering fsync.
        wal.append(1, b"capstone")
        assert wal.syncs == 1
        assert wal.durable_tail == wal.tail

    def test_elapsed_interval_forces_fsync(self, tmp_path):
        window = GroupCommitWindow(fsync_interval_ms=0.0, max_unsynced_batches=1000)
        wal = WriteAheadLog.create(tmp_path / "wal", sync=True, group_commit=window)
        wal.append(1, b"a")
        wal.append(1, b"b")
        # A zero-width window degenerates to per-append fsync.
        assert wal.syncs == 2

    def test_no_sync_mode_ignores_window(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", sync=False)
        wal.append(1, b"a")
        assert wal.syncs == 0
        assert wal.durable_tail < wal.tail
        wal.sync()
        assert wal.durable_tail == wal.tail

    def test_explicit_sync_resets_window(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", sync=True, group_commit=WIDE)
        for i in range(3):
            wal.append(1, b"payload %d" % i)
        wal.sync()
        assert wal.durable_tail == wal.tail
        # The window restarts: the next appends accumulate from zero.
        for i in range(WIDE.max_unsynced_batches - 1):
            wal.append(1, b"more %d" % i)
        assert wal.durable_tail < wal.tail


class TestDurableEngineFlush:
    def seeded(self, tmp_path):
        return DurableEngine.create(
            tmp_path / "store",
            attributes=("A", "B", "C"),
            config=CONFIG,
            values=range(3),
            sync=True,
            group_commit=WIDE,
        )

    def test_flush_advances_durable_tail(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.append_rows([[0, 1, 2], [1, 2, 0]])
        assert durable.wal.durable_tail < durable.wal.tail
        position = durable.flush()
        assert position == durable.wal.tail
        assert durable.wal.durable_tail == position

    def test_checkpoint_is_a_covering_fsync(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.append_rows([[0, 1, 2]])
        durable.checkpoint()
        assert durable.wal.durable_tail == durable.wal.tail
        assert durable.manifest.wal_tail == durable.wal.tail

    def test_close_is_a_covering_fsync(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.append_rows([[0, 1, 2]])
        durable.close()
        assert durable.wal.durable_tail == durable.wal.tail

    def test_unflushed_appends_still_reopen(self, tmp_path):
        # A *process* crash (no power loss) keeps buffered-but-unsynced
        # frames: reopening replays them.
        durable = self.seeded(tmp_path)
        durable.append_rows([[0, 1, 2], [1, 2, 0]])
        durable.close()
        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.num_observations == 2

    def test_open_accepts_group_commit_window(self, tmp_path):
        durable = self.seeded(tmp_path)
        durable.append_rows([[0, 1, 2]])
        durable.close()
        recovered = DurableEngine.open(
            tmp_path / "store", sync=True, group_commit=WIDE
        )
        assert recovered.wal.group_commit is WIDE
        with pytest.raises(StorageError, match="sync=True"):
            DurableEngine.open(tmp_path / "store", group_commit=WIDE)


class TestVanishedWalDirectory:
    def test_append_rows_surfaces_typed_error(self, tmp_path):
        import shutil

        durable = DurableEngine.create(
            tmp_path / "store", attributes=("A", "B"), config=CONFIG, values=range(3)
        )
        durable.append_rows([[0, 1]])
        shutil.rmtree(tmp_path / "store" / "wal")
        with pytest.raises(StorageError, match="disappeared"):
            durable.append_rows([[1, 0]])
        # The engine did not ingest the unloggable batch.
        assert durable.num_observations == 1


class TestAppendFailurePoisonsLog:
    def test_failed_append_refuses_retries_until_reopen(self, tmp_path, monkeypatch):
        wal = WriteAheadLog.create(tmp_path / "wal")
        wal.append(1, b"first")
        tail = wal.tail

        def broken_write(data):
            raise OSError("disk full")

        handle = wal._tail_handle()
        monkeypatch.setattr(handle, "write", broken_write)
        with pytest.raises(StorageError, match="failed"):
            wal.append(1, b"second")
        monkeypatch.undo()
        # The file may hold torn bytes past the in-memory tail; a retried
        # append could be acknowledged yet dropped (or duplicated) at
        # replay, so the log refuses until reopened.
        with pytest.raises(StorageError, match="reopen"):
            wal.append(1, b"retry")
        wal.close()

        reopened = WriteAheadLog.open(tmp_path / "wal")
        assert reopened.tail == tail  # healed back to the valid prefix
        reopened.append(1, b"after-heal")
        records = [record.payload for record in reopened.replay()]
        assert records == [b"first", b"after-heal"]

    def test_failed_fsync_poisons_appends(self, tmp_path, monkeypatch):
        import os as os_module

        wal = WriteAheadLog.create(tmp_path / "wal", sync=True)
        wal.append(1, b"first")

        def broken_fsync(fd):
            raise OSError("fsync lost")

        monkeypatch.setattr(os_module, "fsync", broken_fsync)
        with pytest.raises(StorageError, match="fsync"):
            wal.append(1, b"second")
        monkeypatch.undo()
        with pytest.raises(StorageError, match="reopen"):
            wal.append(1, b"retry")

    def test_fsync_failure_rolls_back_the_unacknowledged_frame(
        self, tmp_path, monkeypatch
    ):
        import os as os_module

        wal = WriteAheadLog.create(tmp_path / "wal", sync=True)
        wal.append(1, b"first")
        tail = wal.tail
        real_fsync = os_module.fsync
        calls = {"count": 0}

        def flaky_fsync(fd):
            calls["count"] += 1
            if calls["count"] == 1:
                raise OSError("transient EIO")
            return real_fsync(fd)

        monkeypatch.setattr(os_module, "fsync", flaky_fsync)
        with pytest.raises(StorageError, match="fsync"):
            wal.append(1, b"second")
        monkeypatch.undo()
        # The fully written frame was truncated away: the file matches the
        # acknowledged prefix, so reopen cannot replay the "failed" batch
        # (and a retried batch cannot ingest twice).
        assert wal.tail == tail
        wal.close()
        reopened = WriteAheadLog.open(tmp_path / "wal")
        assert [record.payload for record in reopened.replay()] == [b"first"]

    def test_close_failure_releases_handle_and_stays_closed(
        self, tmp_path, monkeypatch
    ):
        import os as os_module

        durable = DurableEngine.create(
            tmp_path / "store", attributes=("A", "B"), config=CONFIG, values=range(3)
        )
        durable.append_rows([[0, 1]])

        def broken_fsync(fd):
            raise OSError("device gone")

        monkeypatch.setattr(os_module, "fsync", broken_fsync)
        with pytest.raises(StorageError):
            durable.close()
        monkeypatch.undo()
        # No descriptor leak, and the close stuck: repeats are no-ops.
        assert durable.wal._handle is None
        durable.close()
        with pytest.raises(StorageError, match="closed"):
            durable.append_rows([[1, 0]])

    def test_exit_does_not_mask_in_flight_exception(self, tmp_path, monkeypatch):
        import os as os_module

        def broken_fsync(fd):
            raise OSError("device gone")

        with pytest.raises(ValueError, match="original"):
            with DurableEngine.create(
                tmp_path / "store",
                attributes=("A", "B"),
                config=CONFIG,
                values=range(3),
            ) as durable:
                durable.append_rows([[0, 1]])
                monkeypatch.setattr(os_module, "fsync", broken_fsync)
                raise ValueError("original")
        monkeypatch.undo()
        # The failed close still released the handle and closed the engine.
        assert durable.wal._handle is None
        with pytest.raises(StorageError, match="closed"):
            durable.checkpoint()
