"""Tests of the log-structured storage subsystem (:mod:`repro.storage`)."""
