"""DurableEngine: recovery parity, O(delta) checkpoints, compaction, errors.

The acceptance property of the storage layer is that a reopened durable
engine answers every query layer **bit-identically** to an engine that
never persisted (the "in-memory twin" receiving the same appends), while
checkpoints persist only the shards of heads whose hyperedges actually
changed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.data.database import Database
from repro.engine import AssociationEngine
from repro.exceptions import EngineError, StorageCorruptionError, StorageError
from repro.storage import (
    CompactionPolicy,
    DurableEngine,
    read_manifest,
)

CONFIG = BuildConfig(
    name="storage-test",
    k=3,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.5,
    include_hyperedges=False,
)


def planted_database(num_groups=3, group_size=3, num_rows=120):
    """A market where appending an X-permuted duplicate dirties only head P.

    Groups of mutually copied attributes give every head stable, dense
    in-neighbourhoods; ``P = X % 2`` plants the one association whose
    counts an X permutation disturbs.
    """
    rng = np.random.default_rng(7)
    columns: dict[str, list[int]] = {}
    x = rng.integers(0, 6, num_rows)
    columns["X"] = x.tolist()
    columns["P"] = (x % 2).tolist()
    for g in range(num_groups):
        base = rng.integers(0, 3, num_rows)
        for m in range(group_size):
            columns[f"G{g}M{m}"] = base.tolist()
    attributes = list(columns)
    rows = [[columns[a][r] for a in attributes] for r in range(num_rows)]
    return Database(attributes, rows)


def x_permuted_duplicate(engine, seed=23):
    """Duplicate every stored row with the X column permuted between rows."""
    database = engine.engine._store.to_database() if isinstance(
        engine, DurableEngine
    ) else engine._store.to_database()
    x_position = list(database.attributes).index("X")
    rows = [list(row) for row in database.to_rows()]
    permutation = np.random.default_rng(seed).permutation(len(rows))
    x_values = [rows[permutation[i]][x_position] for i in range(len(rows))]
    for i, row in enumerate(rows):
        row[x_position] = x_values[i]
    return rows


def assert_engines_identical(recovered, twin):
    """Exact-equality parity over state and all four query layers."""
    assert recovered.num_observations == twin.num_observations
    recovered_graph = recovered.hypergraph
    twin_graph = twin.hypergraph
    # Per-head in-edge *order* must match too (canonical reconciliation):
    # shard local ids, and therefore classifier vote order, depend on it.
    for head in twin.head_attributes:
        assert [e.key() for e in recovered_graph.in_edges(head)] == [
            e.key() for e in twin_graph.in_edges(head)
        ]
        assert [e.weight for e in recovered_graph.in_edges(head)] == [
            e.weight for e in twin_graph.in_edges(head)
        ]
    assert recovered.stats() == twin.stats()

    attributes = twin.attributes
    for i, a in enumerate(attributes):
        for b in attributes[i + 1 :]:
            assert recovered.similarity(a, b) == twin.similarity(a, b)
    assert recovered.clusters(t=3) == twin.clusters(t=3)
    for algorithm in ("set-cover", "greedy"):
        assert recovered.dominators(algorithm=algorithm) == twin.dominators(
            algorithm=algorithm
        )
    evidence_attrs = [a for a in attributes if a != "P"][:4]
    row = twin._store.row_values(0)
    evidence = {a: row[a] for a in evidence_attrs}
    targets = [a for a in attributes if a not in evidence]
    assert recovered.classify(evidence, targets) == twin.classify(evidence, targets)


@pytest.fixture()
def seeded(tmp_path):
    """A durable engine over the planted database, plus its in-memory twin."""
    database = planted_database()
    durable = DurableEngine.create(
        tmp_path / "store",
        engine=AssociationEngine.from_database(database, CONFIG),
    )
    twin = AssociationEngine.from_database(database, CONFIG)
    return durable, twin


class TestRecoveryParity:
    def test_reopen_after_checkpoint_matches_twin(self, seeded, tmp_path):
        durable, twin = seeded
        rows = x_permuted_duplicate(durable)
        durable.append_rows(rows)
        durable.checkpoint()
        durable.close()
        twin.append_rows(rows)
        twin.refresh()

        recovered = DurableEngine.open(tmp_path / "store")
        assert_engines_identical(recovered, twin)

    def test_reopen_with_wal_tail_matches_twin(self, seeded, tmp_path):
        durable, twin = seeded
        first = x_permuted_duplicate(durable, seed=1)
        durable.append_rows(first)
        durable.checkpoint()
        twin.append_rows(first)
        twin.refresh()
        # Un-checkpointed tail: rows live only in the log.
        tail_rows = x_permuted_duplicate(durable, seed=2)
        durable.append_rows(tail_rows)
        durable.close()
        twin.append_rows(tail_rows)

        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.counters.recovered_rows == len(first) + len(tail_rows)
        assert_engines_identical(recovered, twin)

    def test_reopen_after_compaction_matches_twin(self, seeded, tmp_path):
        durable, twin = seeded
        for seed in (3, 4):
            rows = x_permuted_duplicate(durable, seed=seed)
            durable.append_rows(rows)
            durable.checkpoint()
            twin.append_rows(rows)
            twin.refresh()
        durable.compact()
        more = x_permuted_duplicate(durable, seed=5)
        durable.append_rows(more)
        durable.close()
        twin.append_rows(more)

        recovered = DurableEngine.open(tmp_path / "store")
        assert_engines_identical(recovered, twin)

    def test_fresh_directory_round_trips_empty_engine(self, tmp_path):
        database = planted_database(num_rows=8)
        durable = DurableEngine.create(
            tmp_path / "store", attributes=database.attributes, config=CONFIG
        )
        durable.close()
        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.num_observations == 0
        recovered.append_rows(database)
        assert recovered.num_observations == 8


class TestCheckpointIsDelta:
    def test_single_dirty_head_checkpoint_persists_one_shard(self, seeded, tmp_path):
        durable, _twin = seeded
        durable.append_rows(x_permuted_duplicate(durable))
        result = durable.checkpoint()
        assert result.dirty_heads == ("P",)
        assert result.delta_file is not None
        manifest = read_manifest(tmp_path / "store")
        assert [entry.heads for entry in manifest.deltas] == [("P",)]

    def test_checkpoint_without_changes_is_skipped(self, seeded):
        durable, _twin = seeded
        first = durable.checkpoint()
        assert first.skipped
        assert first.delta_file is None
        assert durable.counters.checkpoints == 0

    def test_rows_only_checkpoint_writes_no_delta(self, seeded):
        durable, _twin = seeded
        # Appending an exact duplicate of all rows doubles every count:
        # every weight is numerically unchanged, so no shard is dirty, but
        # the new rows must still be covered by a durable sync.
        rows = [list(r.values()) for r in map(durable.engine._store.row_values, range(4))]
        durable.append_rows(rows)
        result = durable.checkpoint()
        assert not result.skipped
        assert durable.manifest.num_rows == durable.num_observations
        assert durable.manifest.wal_tail == durable.wal.tail

    def test_reopen_after_checkpoint_serves_without_compiles(self, seeded, tmp_path):
        durable, _twin = seeded
        durable.append_rows(x_permuted_duplicate(durable))
        durable.checkpoint()
        durable.close()

        recovered = DurableEngine.open(tmp_path / "store")
        recovered.dominators(algorithm="greedy")
        # Base shards + the P delta mirror the exact final state: the first
        # query adopts them and compiles nothing.
        assert recovered.engine.counters.shard_compiles == 0
        assert recovered.engine.counters.full_compiles == 0

    def test_reopen_with_tail_recompiles_only_changed_heads(self, seeded, tmp_path):
        durable, _twin = seeded
        tail_rows = x_permuted_duplicate(durable)
        durable.append_rows(tail_rows)  # never checkpointed
        durable.close()

        recovered = DurableEngine.open(tmp_path / "store")
        recovered.dominators(algorithm="greedy")
        # Replaying the tail dirtied only P's signature relative to the
        # adopted base shards.
        assert recovered.engine.counters.shard_compiles == 1
        assert recovered.engine.counters.full_compiles == 0


class TestCompaction:
    def test_compact_folds_and_deletes(self, seeded, tmp_path):
        durable, _twin = seeded
        for seed in (1, 2):
            durable.append_rows(x_permuted_duplicate(durable, seed=seed))
            durable.checkpoint()
        directory = tmp_path / "store"
        assert list(directory.glob("delta-*.npz"))
        report = durable.compact()
        assert report.deltas_removed == 2
        assert not list(directory.glob("delta-*.npz"))
        assert len(list(directory.glob("base-*.json"))) == 1
        manifest = read_manifest(directory)
        assert manifest.deltas == []
        assert manifest.base_file == f"base-{report.checkpoint_id:08d}.json"

    def test_policy_triggers_auto_compaction(self, tmp_path):
        database = planted_database()
        durable = DurableEngine.create(
            tmp_path / "store",
            engine=AssociationEngine.from_database(database, CONFIG),
            policy=CompactionPolicy(max_wal_bytes=1 << 30, max_deltas=2),
        )
        results = []
        for seed in (1, 2, 3):
            durable.append_rows(x_permuted_duplicate(durable, seed=seed))
            results.append(durable.checkpoint())
        assert any(result.compacted for result in results)
        assert durable.counters.compactions >= 1
        assert len(durable.manifest.deltas) < 2

    def test_wal_size_triggers_auto_compaction(self, seeded):
        durable, _twin = seeded
        durable.policy = CompactionPolicy(max_wal_bytes=1, max_deltas=10_000)
        durable.append_rows(x_permuted_duplicate(durable))
        result = durable.checkpoint()
        assert result.compacted
        assert durable.wal.total_bytes(since=durable.manifest.base_wal) == 0


class TestCorruptionAndErrors:
    def test_torn_unacknowledged_tail_recovers_prefix(self, seeded, tmp_path):
        durable, twin = seeded
        checkpointed = x_permuted_duplicate(durable, seed=1)
        durable.append_rows(checkpointed)
        durable.checkpoint()
        twin.append_rows(checkpointed)
        durable.append_rows(x_permuted_duplicate(durable, seed=2))  # tail only
        durable.close()

        segment = sorted((tmp_path / "store" / "wal").glob("wal-*.log"))[-1]
        segment.write_bytes(segment.read_bytes()[:-7])

        recovered = DurableEngine.open(tmp_path / "store")
        # The torn batch is dropped whole; the checkpointed prefix survives.
        assert recovered.num_observations == twin.num_observations
        assert_engines_identical(recovered, twin)

    def test_torn_acknowledged_tail_raises(self, seeded, tmp_path):
        durable, _twin = seeded
        durable.append_rows(x_permuted_duplicate(durable))
        durable.checkpoint()
        durable.close()
        segment = sorted((tmp_path / "store" / "wal").glob("wal-*.log"))[-1]
        segment.write_bytes(segment.read_bytes()[:-7])
        with pytest.raises(StorageCorruptionError, match="acknowledged"):
            DurableEngine.open(tmp_path / "store")

    def test_corrupt_delta_raises(self, seeded, tmp_path):
        durable, _twin = seeded
        durable.append_rows(x_permuted_duplicate(durable))
        durable.checkpoint()
        durable.close()
        delta = next((tmp_path / "store").glob("delta-*.npz"))
        data = bytearray(delta.read_bytes())
        data[len(data) // 2] ^= 0xFF
        delta.write_bytes(bytes(data))
        with pytest.raises(StorageCorruptionError):
            DurableEngine.open(tmp_path / "store")

    def test_corrupt_manifest_raises(self, seeded, tmp_path):
        durable, _twin = seeded
        durable.close()
        (tmp_path / "store" / "MANIFEST.json").write_text("{not json")
        with pytest.raises(StorageCorruptionError, match="manifest"):
            DurableEngine.open(tmp_path / "store")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StorageCorruptionError, match="MANIFEST"):
            DurableEngine.open(tmp_path / "empty")

    def test_create_twice_raises(self, seeded, tmp_path):
        with pytest.raises(StorageError, match="already"):
            DurableEngine.create(
                tmp_path / "store", attributes=("A", "B"), config=CONFIG
            )

    def test_create_needs_engine_or_attributes(self, tmp_path):
        with pytest.raises(StorageError, match="attribute list"):
            DurableEngine.create(tmp_path / "store")

    def test_closed_engine_refuses_appends(self, seeded):
        durable, _twin = seeded
        durable.close()
        with pytest.raises(StorageError, match="closed"):
            durable.append_row([0] * len(durable.attributes))
        with pytest.raises(StorageError, match="closed"):
            durable.checkpoint()

    def test_non_scalar_values_are_refused(self, seeded):
        durable, _twin = seeded
        row = [0] * len(durable.attributes)
        row[0] = (1, 2)  # a tuple would silently decode as a list
        with pytest.raises(StorageError, match="cannot be framed"):
            durable.append_row(row)
        # Nothing was logged or appended.
        assert durable.counters.appended_batches == 0

    def test_mismatched_database_attributes_raise(self, seeded):
        durable, _twin = seeded
        other = Database(("A", "B"), [[1, 2]])
        with pytest.raises(EngineError, match="attributes"):
            durable.append_rows(other)


class TestDelegationAndLifecycle:
    def test_queries_delegate_to_engine(self, seeded):
        durable, twin = seeded
        a, b = durable.attributes[:2]
        assert durable.similarity(a, b) == twin.similarity(a, b)
        assert durable.num_observations == twin.num_observations
        assert durable.config.name == CONFIG.name

    def test_context_manager_closes(self, tmp_path):
        database = planted_database(num_rows=8)
        with DurableEngine.create(
            tmp_path / "store",
            engine=AssociationEngine.from_database(database, CONFIG),
        ) as durable:
            durable.append_rows(database.to_rows())
        with pytest.raises(StorageError, match="closed"):
            durable.checkpoint()
        # Close is idempotent and the unchecked tail replays on reopen.
        durable.close()
        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.num_observations == 16

    def test_manifest_wal_position_survives_json_round_trip(self, seeded, tmp_path):
        durable, _twin = seeded
        durable.append_rows(x_permuted_duplicate(durable))
        durable.checkpoint()
        raw = json.loads((tmp_path / "store" / "MANIFEST.json").read_text())
        assert raw["format"] == "repro.storage/1"
        assert raw["wal_tail"]["segment"] >= 1
        assert raw["num_rows"] == durable.num_observations
