"""Push-mode tailing: the advisory WAL notify file.

The leader's log overwrites one small fixed-width ``NOTIFY`` file with
its tail position after every append and roll.  A follower's
``wait_for_growth`` then reads that single file per tick and runs the
full segment scan (a glob plus one ``stat`` per segment) only when the
advertised tail changes — falling back to scanning every tick when the
file is absent (an older leader) or unparseable.  Convergence must be
identical in both modes; only the scan count differs.
"""

from __future__ import annotations

import threading
import time

from repro.storage import DurableEngine, ReplicaEngine
from repro.storage.wal import WalPosition, WriteAheadLog

ATTRIBUTES = ["a", "b", "c"]


def rows(count: int, start: int = 0) -> list[list[str]]:
    return [
        [f"a{(start + i) % 3}", f"b{(start + i) % 4}", f"c{(start + i) % 5}"]
        for i in range(count)
    ]


# ------------------------------------------------------------------ writer side
def test_append_and_roll_advertise_the_tail(tmp_path):
    wal = WriteAheadLog.create(tmp_path / "wal")
    assert wal.notify_position() is None  # nothing appended yet

    tails = [wal.append(1, b"x" * 16) for _ in range(3)]
    assert wal.notify_position() == tails[-1] == wal.tail

    rolled = wal.roll()
    assert rolled.segment == 2 and rolled.offset == 0
    assert wal.notify_position() == rolled

    wal.append(1, b"y" * 8)
    assert wal.notify_position() == wal.tail
    wal.close()

    # Another (read-only) log object over the same directory reads it too.
    follower = WriteAheadLog.open_read_only(tmp_path / "wal")
    assert follower.notify_position() == wal.tail


def test_notify_content_is_monotonic(tmp_path):
    wal = WriteAheadLog.create(tmp_path / "wal", segment_bytes=64)
    seen: list[WalPosition] = []
    for _ in range(12):  # small segment_bytes forces rolls along the way
        wal.append(1, b"payload-bytes" * 4)
        seen.append(wal.notify_position())
    assert seen == sorted(seen)
    assert len(set(seen)) == len(seen)
    wal.close()


def test_unparseable_notify_reads_as_none(tmp_path):
    wal = WriteAheadLog.create(tmp_path / "wal")
    wal.append(1, b"x")
    wal.notify_path.write_text("torn garb")
    assert wal.notify_position() is None
    # The writer recovers the file on its next append.
    wal.append(1, b"y")
    assert wal.notify_position() == wal.tail
    wal.close()


# ------------------------------------------------------------------ follower side
def test_wait_for_growth_scans_less_with_notify_and_converges(tmp_path):
    leader = DurableEngine.create(tmp_path / "lead", attributes=ATTRIBUTES)
    leader.append_rows(rows(30))
    follower = ReplicaEngine.open(tmp_path / "lead")
    follower.catch_up(timeout=10)
    notify = leader.directory / "wal" / "NOTIFY"
    assert notify.exists()

    def idle_scans() -> int:
        before = follower.counters["growth_scans"]
        assert follower.wait_for_growth(timeout=0.3, poll_interval=0.02) is False
        return follower.counters["growth_scans"] - before

    def growth_detected() -> bool:
        def later() -> None:
            time.sleep(0.05)
            leader.append_rows(rows(5, start=follower.engine.num_observations))

        appender = threading.Thread(target=later)
        appender.start()
        grew = follower.wait_for_growth(timeout=10.0, poll_interval=0.02)
        appender.join()
        return grew

    # With the notify file: one initial scan, then zero while idle.
    scans_with_notify = idle_scans()
    assert scans_with_notify == 1
    assert growth_detected()
    follower.catch_up(timeout=10)
    assert follower.engine.num_observations == leader.engine.num_observations

    # Without it (an older leader): every tick falls back to a full scan —
    # strictly more scans for the same idle window...
    notify.unlink()
    scans_without_notify = idle_scans()
    assert scans_without_notify > scans_with_notify
    # ...and growth still converges identically through the fallback.
    assert growth_detected()
    follower.catch_up(timeout=10)
    assert follower.engine.num_observations == leader.engine.num_observations
    for first in ATTRIBUTES:
        for second in ATTRIBUTES:
            if first != second:
                assert follower.similarity(first, second) == leader.similarity(
                    first, second
                )

    follower.close()
    leader.close()


def test_checkpoint_roll_keeps_notify_fresh(tmp_path):
    leader = DurableEngine.create(tmp_path / "lead", attributes=ATTRIBUTES)
    leader.append_rows(rows(20))
    wal = WriteAheadLog.open_read_only(tmp_path / "lead" / "wal")
    before = wal.notify_position()
    assert before is not None
    leader.checkpoint()
    leader.append_rows(rows(4, start=20))
    after = wal.notify_position()
    assert after is not None and after > before
    leader.close()
