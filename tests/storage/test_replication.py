"""Property tests for WAL-shipped read replicas.

Three invariants, checked over hypothesis-generated scenarios and fixed
adversarial constructions:

* **Watermark parity** — any interleaving of leader ``append`` /
  ``checkpoint`` / ``compact`` with follower ``poll`` / ``restart``
  leaves a caught-up follower bit-identical to the leader on every query
  layer (per-head edge order, stats, similarity, clusters, both
  dominator algorithms, classification).  Checkpoints and compactions on
  the leader must be invisible to the follower beyond shortening its
  next bootstrap.
* **Torn tails wait** — a half-written frame at the log tail applies
  nothing, raises nothing, and the poll after the frame completes
  applies it; torn bytes are "the leader is still writing", never
  corruption.
* **Mixed generations tail** — JSON row frames (the first-generation
  payload) and binary frames interleaved in one log apply identically
  through a follower's tail.
"""

from __future__ import annotations

import json
import struct
import tempfile
import zlib
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BuildConfig
from repro.engine import AssociationEngine
from repro.exceptions import StorageError
from repro.storage import DurableEngine, ReplicaEngine, ROWS_RECORD, list_follower_leases

CONFIG = BuildConfig(
    name="replica-test",
    k=2,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.4,
    include_hyperedges=True,
)

ATTRIBUTES = ("A", "B", "C", "D")
VALUES = (0, 1, 2)

_HEADER = struct.Struct("<2sBII")


def row_batches():
    return st.lists(
        st.lists(
            st.sampled_from(VALUES), min_size=len(ATTRIBUTES), max_size=len(ATTRIBUTES)
        ),
        min_size=1,
        max_size=4,
    )


def assert_same_answers(follower, leader):
    """Exact equality across every query layer plus model state."""
    assert follower.num_observations == leader.num_observations
    follower_graph = follower.hypergraph
    leader_graph = leader.hypergraph
    for head in ATTRIBUTES:
        assert [(e.key(), e.weight) for e in follower_graph.in_edges(head)] == [
            (e.key(), e.weight) for e in leader_graph.in_edges(head)
        ]
    assert follower.stats() == leader.stats()
    for i, a in enumerate(ATTRIBUTES):
        for b in ATTRIBUTES[i + 1 :]:
            assert follower.similarity(a, b) == leader.similarity(a, b)
    assert follower.clusters(t=2) == leader.clusters(t=2)
    for algorithm in ("set-cover", "greedy"):
        assert follower.dominators(algorithm=algorithm) == leader.dominators(
            algorithm=algorithm
        )
    if leader.num_observations:
        evidence = {a: leader._store.row_values(0)[a] for a in ATTRIBUTES[:2]}
        assert follower.classify(evidence) == leader.classify(evidence)


def make_json_frame(rows) -> bytes:
    """A first-generation (JSON) row-batch frame, byte-exact."""
    payload = json.dumps({"rows": rows}).encode("utf-8")
    return (
        _HEADER.pack(
            b"RW",
            ROWS_RECORD,
            zlib.crc32(bytes((ROWS_RECORD,)) + payload),
            len(payload),
        )
        + payload
    )


def last_segment(directory: Path) -> Path:
    return sorted((directory / "wal").glob("wal-*.log"))[-1]


class TestInterleavedReplicationParity:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_any_interleaving_matches_leader_at_watermark(self, data):
        ops = data.draw(
            st.lists(
                st.sampled_from(
                    ("append", "checkpoint", "compact", "poll", "restart")
                ),
                min_size=1,
                max_size=8,
            )
        )
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "store"
            leader = DurableEngine.create(
                directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
            )
            leader.checkpoint()  # publish a manifest for the first bootstrap
            follower = ReplicaEngine.open(directory, follower_id="prop-follower")
            try:
                for op in ops:
                    if op == "append":
                        leader.append_rows(data.draw(row_batches()))
                    elif op == "checkpoint":
                        leader.checkpoint()
                    elif op == "compact":
                        leader.compact()
                    elif op == "poll":
                        follower.poll()
                    else:  # restart
                        follower.close()
                        follower = ReplicaEngine.open(
                            directory, follower_id="prop-follower"
                        )
                # With the leader idle, a bounded catch-up must converge on
                # the leader's exact state — whatever raced before.
                follower.catch_up(timeout=30.0)
                assert_same_answers(follower, leader.engine)
                # And survive one more restart at the final watermark.
                follower.close()
                follower = ReplicaEngine.open(directory, follower_id="prop-follower")
                follower.catch_up(timeout=30.0)
                assert_same_answers(follower, leader.engine)
            finally:
                follower.close()
                leader.close()


class TestTornAndMixedTails:
    BATCH = [[0, 1, 2, 0], [1, 1, 0, 2], [2, 0, 1, 1]]
    TAIL_ROWS = [[1, 2, 0, 0], [2, 2, 1, 0]]

    def test_torn_tail_applies_nothing_then_resumes(self, tmp_path):
        directory = tmp_path / "store"
        leader = DurableEngine.create(
            directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        leader.append_rows(self.BATCH)
        leader.checkpoint()
        with ReplicaEngine.open(directory) as follower:
            follower.catch_up(timeout=30.0)
            rows_before = follower.num_observations

            # A frame torn mid-write at the tail: the follower applies
            # nothing, raises nothing, and reports the bytes as lag.
            frame = make_json_frame(self.TAIL_ROWS)
            torn = len(frame) // 2
            segment = last_segment(directory)
            with segment.open("ab") as handle:
                handle.write(frame[:torn])
            assert follower.poll() == 0
            assert follower.num_observations == rows_before
            assert follower.lag().bytes > 0

            # The frame completes (the leader finished its write): the
            # next poll applies the batch atomically.
            with segment.open("ab") as handle:
                handle.write(frame[torn:])
            assert follower.poll() == len(self.TAIL_ROWS)
            assert follower.num_observations == rows_before + len(self.TAIL_ROWS)
        leader.close()

    def test_mixed_json_and_binary_frames_tail_identically(self, tmp_path):
        directory = tmp_path / "store"
        leader = DurableEngine.create(
            directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        leader.append_rows([[0, 0, 2, 2]])  # materializes the first segment
        leader.checkpoint()
        with ReplicaEngine.open(directory) as follower:
            follower.catch_up(timeout=30.0)

            # A first-generation JSON frame lands in the log (an old-format
            # writer); the leader's engine ingests the same rows so leader
            # and log agree.
            with last_segment(directory).open("ab") as handle:
                handle.write(make_json_frame(self.BATCH))
            leader.engine.append_rows(self.BATCH)

            # Then the current binary path appends through the leader.
            leader.append_rows(self.TAIL_ROWS)

            assert follower.poll() == len(self.BATCH) + len(self.TAIL_ROWS)
            assert_same_answers(follower, leader.engine)
        leader.close()


class TestWriteSurfaceAndLeases:
    def test_followers_cannot_write(self, tmp_path):
        directory = tmp_path / "store"
        leader = DurableEngine.create(
            directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        leader.checkpoint()
        with ReplicaEngine.open(directory) as follower:
            calls = (
                ("append_rows", ([[0, 1, 2, 0]],)),
                ("append_row", ([0, 1, 2, 0],)),
                ("checkpoint", ()),
                ("compact", ()),
                ("flush", ()),
            )
            for operation, args in calls:
                try:
                    getattr(follower, operation)(*args)
                except StorageError:
                    continue
                raise AssertionError(f"{operation} did not raise on a follower")
        leader.close()

    def test_close_drops_the_lease(self, tmp_path):
        directory = tmp_path / "store"
        leader = DurableEngine.create(
            directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        leader.checkpoint()
        follower = ReplicaEngine.open(directory, follower_id="lease-test")
        assert any(
            lease["follower_id"] == "lease-test"
            for lease in list_follower_leases(directory)
        )
        follower.close()
        assert not any(
            lease["follower_id"] == "lease-test"
            for lease in list_follower_leases(directory)
        )
        leader.close()

    def test_fresh_lease_holds_segments_across_compaction(self, tmp_path):
        directory = tmp_path / "store"
        leader = DurableEngine.create(
            directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        leader.append_rows(self.BATCH_A)
        leader.checkpoint()
        with ReplicaEngine.open(directory) as follower:
            follower.catch_up(timeout=30.0)
            leader.append_rows(self.BATCH_B)
            report = leader.compact()
            # The follower's lease pinned its position: compaction held
            # the segments it still needs, and the follower keeps tailing
            # straight across the compaction without a re-bootstrap.
            assert report.segments_held_for_followers > 0
            follower.catch_up(timeout=30.0)
            assert follower.counters["rebootstraps"] == 0
            assert_same_answers(follower, leader.engine)
        leader.close()

    BATCH_A = [[0, 1, 2, 0], [1, 1, 0, 2]]
    BATCH_B = [[2, 1, 2, 1], [1, 0, 0, 1]]

    def test_stale_lease_follower_rebootstraps_after_compaction(self, tmp_path):
        directory = tmp_path / "store"
        leader = DurableEngine.create(
            directory, attributes=ATTRIBUTES, config=CONFIG, values=VALUES
        )
        leader.append_rows(self.BATCH_A)
        leader.checkpoint()
        # A zero-TTL lease is stale the moment it is written: compaction
        # ignores it and may delete segments the follower still needs.
        follower = ReplicaEngine.open(
            directory, follower_id="stale", lease_ttl_seconds=0.0
        )
        try:
            follower.catch_up(timeout=30.0)
            leader.append_rows(self.BATCH_B)
            leader.checkpoint()
            leader.compact()
            leader.append_rows([[0, 0, 2, 2]])
            # Polls either keep working (position survived) or strike out
            # and re-bootstrap from the fresh manifest; either way the
            # follower converges on the leader's exact state.
            follower.catch_up(timeout=30.0)
            assert_same_answers(follower, leader.engine)
        finally:
            follower.close()
            leader.close()
