"""WAL payload formats: binary frames, version stamps, mixed-format logs.

The log's row batches moved from JSON payloads (``ROWS_RECORD``) to the
versioned binary encoding of :mod:`repro.storage.frames`
(``BINARY_ROWS_RECORD``).  These tests pin the compatibility contract:

* logs holding JSON frames, binary frames, or both replay correctly;
* an unknown binary format stamp raises ``StorageCorruptionError``
  instead of a misparse;
* a crash-torn binary tail heals by truncation exactly like a JSON one.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import BuildConfig
from repro.engine import AssociationEngine
from repro.exceptions import StorageCorruptionError, StorageError
from repro.storage import (
    BINARY_ROWS_RECORD,
    ROWS_RECORD,
    DurableEngine,
    WriteAheadLog,
    decode_rows,
    encode_rows,
)
from repro.storage.frames import ROWS_PAYLOAD_VERSION

CONFIG = BuildConfig(
    name="wal-format-test",
    k=3,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.5,
    include_hyperedges=False,
)

ATTRIBUTES = ("A", "B", "C")
ROWS = [[0, 1, 2], [1, 1, 0], [2, 0, 1], [0, 0, 0]]


def fresh_durable(tmp_path, name="store"):
    return DurableEngine.create(
        tmp_path / name, attributes=ATTRIBUTES, config=CONFIG, values=range(3)
    )


class TestBinaryCodec:
    def test_round_trip_preserves_values_and_types(self):
        rows = [[0, -7, 3.5, True, False, None, "tick", ""], [1, 2, 3, 4, 5, 6, "a", "b"]]
        decoded = decode_rows(encode_rows(rows))
        assert decoded == rows
        for row, back in zip(rows, decoded):
            for value, restored in zip(row, back):
                assert type(value) is type(restored)

    def test_signed_zeros_and_nan_round_trip_by_bit_pattern(self):
        import math

        rows = [[-0.0, 0.0, float("nan"), 1.5]]
        decoded = decode_rows(encode_rows(rows))
        assert math.copysign(1.0, decoded[0][0]) == -1.0
        assert math.copysign(1.0, decoded[0][1]) == 1.0
        assert math.isnan(decoded[0][2])
        assert decoded[0][3] == 1.5

    def test_colliding_scalars_intern_separately(self):
        # 1 == 1.0 == True in Python, but the engine's domain is
        # type-sensitive (values sort by str); the codec must not merge.
        rows = [[1, 1.0, True], ["1", "1.0", "True"]]
        decoded = decode_rows(encode_rows(rows))
        assert [type(v) for row in decoded for v in row] == [
            int, float, bool, str, str, str
        ]

    def test_binary_payload_is_smaller_than_json(self):
        rows = [[i % 5 for _ in range(100)] for i in range(200)]
        binary = encode_rows(rows)
        as_json = json.dumps({"rows": rows}, separators=(",", ":")).encode()
        assert len(binary) * 5 <= len(as_json)

    def test_unknown_format_stamp_raises(self):
        payload = encode_rows(ROWS)
        stamped = bytes((ROWS_PAYLOAD_VERSION + 1,)) + payload[1:]
        with pytest.raises(StorageCorruptionError, match="format stamp"):
            decode_rows(stamped)

    def test_unknown_flag_bits_raise(self):
        payload = encode_rows(ROWS)
        flagged = payload[:1] + bytes((payload[1] | 0x80,)) + payload[2:]
        with pytest.raises(StorageCorruptionError, match="flag bits"):
            decode_rows(flagged)

    def test_truncated_payload_raises(self):
        payload = encode_rows([[i, i + 1, "s" * 40] for i in range(50)])
        for cut in (1, 2, len(payload) // 2, len(payload) - 1):
            with pytest.raises(StorageCorruptionError):
                decode_rows(payload[:cut])

    def test_non_scalar_cell_raises_storage_error(self):
        with pytest.raises(StorageError, match="cannot be framed"):
            encode_rows([[object()]])


class TestMixedFormatLogs:
    def test_json_and_binary_frames_replay_together(self, tmp_path):
        """A log written partly by the JSON generation replays seamlessly."""
        durable = fresh_durable(tmp_path)
        durable.append_rows(ROWS[:2])  # binary frames
        durable.close()
        # Splice a legacy JSON frame into the live log, as an old build
        # would have written it.
        wal = WriteAheadLog.open(tmp_path / "store" / "wal")
        wal.append(
            ROWS_RECORD,
            json.dumps({"rows": ROWS[2:]}, separators=(",", ":")).encode("utf-8"),
        )
        wal.close()

        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.counters.recovered_rows == len(ROWS)
        twin = AssociationEngine(ATTRIBUTES, CONFIG, values=range(3))
        twin.append_rows(ROWS)
        assert recovered.stats() == twin.stats()

    def test_pure_legacy_json_log_replays(self, tmp_path):
        durable = fresh_durable(tmp_path)
        durable.close()
        wal = WriteAheadLog.open(tmp_path / "store" / "wal")
        for row in ROWS:
            wal.append(
                ROWS_RECORD,
                json.dumps({"rows": [row]}, separators=(",", ":")).encode("utf-8"),
            )
        wal.close()
        recovered = DurableEngine.open(tmp_path / "store")
        assert recovered.counters.recovered_rows == len(ROWS)
        assert recovered.num_observations == len(ROWS)

    def test_unknown_stamp_in_log_is_corruption(self, tmp_path):
        durable = fresh_durable(tmp_path)
        durable.close()
        wal = WriteAheadLog.open(tmp_path / "store" / "wal")
        payload = encode_rows(ROWS)
        wal.append(BINARY_ROWS_RECORD, bytes((99,)) + payload[1:])
        wal.close()
        with pytest.raises(StorageCorruptionError, match="format stamp"):
            DurableEngine.open(tmp_path / "store")

    def test_malformed_json_rows_payload_is_corruption(self, tmp_path):
        durable = fresh_durable(tmp_path)
        durable.close()
        wal = WriteAheadLog.open(tmp_path / "store" / "wal")
        wal.append(ROWS_RECORD, b'{"rows": 7}')
        wal.close()
        with pytest.raises(StorageCorruptionError, match="no row list"):
            DurableEngine.open(tmp_path / "store")


class TestTornBinaryTails:
    def test_torn_binary_tail_heals_by_truncation(self, tmp_path):
        durable = fresh_durable(tmp_path)
        durable.append_rows(ROWS[:2])
        durable.checkpoint()
        durable.append_rows(ROWS[2:])  # never acknowledged by a checkpoint
        durable.close()

        segment = sorted((tmp_path / "store" / "wal").glob("wal-*.log"))[-1]
        segment.write_bytes(segment.read_bytes()[:-3])

        recovered = DurableEngine.open(tmp_path / "store")
        # The torn batch drops whole; the checkpointed prefix survives.
        assert recovered.num_observations == 2
        assert recovered.counters.recovered_rows == 2

    def test_torn_acknowledged_binary_tail_raises(self, tmp_path):
        durable = fresh_durable(tmp_path)
        durable.append_rows(ROWS)
        durable.checkpoint()
        durable.close()
        segment = sorted((tmp_path / "store" / "wal").glob("wal-*.log"))[-1]
        segment.write_bytes(segment.read_bytes()[:-3])
        with pytest.raises(StorageCorruptionError, match="acknowledged"):
            DurableEngine.open(tmp_path / "store")
