"""Hermetic end-to-end: the driver against the in-process server."""

from __future__ import annotations

from repro.loadgen import (
    Corpus,
    LoadgenConfig,
    ServiceClient,
    prepare_tenant,
    run_load,
    self_served,
)

MIX = {"similarity": 0.5, "append": 0.3, "classify": 0.2}


def test_self_served_run_completes_every_scheduled_arrival():
    config_kwargs = dict(
        rate=30.0, duration=1.5, mix=MIX, workers=2, arrival="fixed", seed=4
    )
    with self_served() as url:
        report = run_load(LoadgenConfig(target=url, **config_kwargs))
    assert report.completed == int(30.0 * 1.5)
    assert report.errors == 0
    assert set(report.operations) <= set(MIX)
    assert report.achieved_rate > 0.0
    for operation in report.operations.values():
        percentiles = operation.latency.percentiles()
        assert 0.0 < percentiles["p50"] <= percentiles["p999"]


def test_prepare_tenant_is_idempotent_and_checks_shape():
    with self_served() as url:
        client = ServiceClient(url)
        try:
            corpus = Corpus()
            prepare_tenant(client, corpus)
            # Re-preparing adopts the existing tenant and re-seeds it.
            prepare_tenant(client, corpus)
            stats = client.get(f"/v1/tenants/{corpus.spec.dataset_id}")
            assert stats.ok
            assert stats.body["num_attributes"] == len(corpus.attributes)
            assert stats.body["num_rows"] >= 2 * corpus.spec.seed_rows
        finally:
            client.close()


def test_self_served_is_multi_tenant():
    with self_served() as url:
        client = ServiceClient(url)
        try:
            listing = client.get("/v1/tenants")
            assert listing.ok
            body = str(listing.body)
            assert "loadgen-neighbor" in body
        finally:
            client.close()
