"""Open-loop schedules: determinism, rates, and the no-skip guarantee.

The coordinated-omission contract lives here: a stalled worker drains its
backlog *late* — every missed tick is dispensed and recorded as a late
dispatch — rather than the cursor quietly skipping ahead.  The tests
drive :class:`ScheduleCursor` with a fake clock so the stall is exact.
"""

from __future__ import annotations

import math

import pytest

from repro.exceptions import LoadgenError
from repro.loadgen import ScheduleCursor, build_schedule

MIX = {"similarity": 0.7, "append": 0.3}


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------- schedules
def test_fixed_schedule_spaces_arrivals_exactly():
    schedule = build_schedule(10.0, 1.0, MIX, arrival="fixed", seed=3)
    assert len(schedule) == 10
    offsets = [arrival.offset for arrival in schedule]
    assert offsets == pytest.approx([i * 0.1 for i in range(10)])
    assert [arrival.index for arrival in schedule] == list(range(10))


def test_poisson_schedule_is_seed_deterministic_and_rate_shaped():
    first = build_schedule(200.0, 2.0, MIX, arrival="poisson", seed=5)
    again = build_schedule(200.0, 2.0, MIX, arrival="poisson", seed=5)
    other = build_schedule(200.0, 2.0, MIX, arrival="poisson", seed=6)
    assert first == again
    assert first != other
    # ~400 expected arrivals; 5 sigma of slack keeps this deterministic in
    # practice while still verifying the rate parameter is honored.
    assert 300 < len(first) < 500
    assert all(0.0 <= a.offset < 2.0 for a in first)
    assert all(b.offset > a.offset for a, b in zip(first, first[1:]))


def test_schedule_draws_operations_from_the_mix():
    schedule = build_schedule(500.0, 2.0, MIX, arrival="fixed", seed=1)
    drawn = {arrival.operation for arrival in schedule}
    assert drawn == set(MIX)
    share = sum(a.operation == "similarity" for a in schedule) / len(schedule)
    assert math.isclose(share, 0.7, abs_tol=0.1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rate": 0.0},
        {"rate": -1.0},
        {"duration": 0.0},
        {"arrival": "uniform"},
    ],
)
def test_schedule_rejects_invalid_parameters(kwargs):
    arguments = {"rate": 10.0, "duration": 1.0, "arrival": "fixed"}
    arguments.update(kwargs)
    with pytest.raises(LoadgenError):
        build_schedule(
            arguments["rate"],
            arguments["duration"],
            MIX,
            arrival=arguments["arrival"],
        )


# ---------------------------------------------------------------- the cursor
def test_cursor_dispenses_every_arrival_in_order():
    schedule = build_schedule(10.0, 1.0, MIX, arrival="fixed", seed=2)
    clock = FakeClock()
    cursor = ScheduleCursor(schedule, start_time=clock.now, clock=clock)
    seen = []
    while True:
        dispensed = cursor.next_arrival()
        if dispensed is None:
            break
        arrival, _lag = dispensed
        seen.append(arrival.index)
    assert seen == list(range(10))
    assert cursor.dispensed == 10
    assert cursor.next_arrival() is None


def test_on_time_consumer_records_no_late_dispatches():
    schedule = build_schedule(10.0, 1.0, MIX, arrival="fixed", seed=2)
    clock = FakeClock()
    cursor = ScheduleCursor(schedule, start_time=clock.now, clock=clock)
    for expected in schedule:
        clock.now = cursor.scheduled_time(expected)
        arrival, lag = cursor.next_arrival()
        assert arrival is expected
        assert lag == pytest.approx(0.0)
    assert cursor.late_dispatches == 0
    assert cursor.max_dispatch_lag == 0.0


def test_early_consumer_sees_negative_lag_to_sleep_on():
    schedule = build_schedule(10.0, 1.0, MIX, arrival="fixed", seed=2)
    clock = FakeClock()
    cursor = ScheduleCursor(schedule, start_time=clock.now + 0.5, clock=clock)
    _arrival, lag = cursor.next_arrival()
    assert lag == pytest.approx(-0.5)
    assert cursor.late_dispatches == 0


def test_stalled_worker_drains_missed_ticks_late_never_skips():
    """A 0.5s stall across a 10/s schedule: the five ticks scheduled inside
    the stall are all still dispensed (with their true lag recorded), and
    the cursor's counters expose the stall instead of hiding it."""
    schedule = build_schedule(10.0, 1.0, MIX, arrival="fixed", seed=2)
    clock = FakeClock()
    cursor = ScheduleCursor(schedule, start_time=clock.now, clock=clock)

    arrival, lag = cursor.next_arrival()  # tick at offset 0.0, on time
    assert lag == pytest.approx(0.0)

    clock.now += 0.5  # the worker stalls for half a second
    lags = []
    indexes = []
    while True:
        dispensed = cursor.next_arrival()
        if dispensed is None:
            break
        arrival, lag = dispensed
        indexes.append(arrival.index)
        lags.append(lag)
    # Every remaining tick was dispensed, in order — none skipped.
    assert indexes == list(range(1, 10))
    # Ticks 1..5 (offsets 0.1..0.5) were already due: positive, shrinking lag.
    assert lags[0] == pytest.approx(0.4)
    assert lags[4] == pytest.approx(0.0)
    assert cursor.late_dispatches == 4  # offsets 0.1..0.4 beyond the grace
    assert cursor.max_dispatch_lag == pytest.approx(0.4)
    # Ticks past the stall are early again (the consumer would sleep).
    assert lags[5] == pytest.approx(-0.1)
