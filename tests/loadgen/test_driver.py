"""Driver plumbing that needs no server: merging, reports, targets."""

from __future__ import annotations

import json
import random

import pytest

from repro.exceptions import LoadgenError
from repro.loadgen import (
    LoadgenConfig,
    LoadReport,
    OperationReport,
    format_report,
    run_load,
    split_target,
)
from repro.obs import Histogram


def test_split_target_accepts_url_and_bare_forms():
    assert split_target("http://127.0.0.1:8722") == ("127.0.0.1", 8722)
    assert split_target("localhost:9000") == ("localhost", 9000)
    assert split_target("http://example.test") == ("example.test", 80)


@pytest.mark.parametrize("target", ["https://x:1", "ftp://x:1", "http://:80"])
def test_split_target_rejects_non_http_targets(target):
    with pytest.raises(LoadgenError):
        split_target(target)


def test_run_load_rejects_nonpositive_workers():
    config = LoadgenConfig(target="127.0.0.1:1", workers=0)
    with pytest.raises(LoadgenError):
        run_load(config)


def test_worker_histogram_merge_equals_single_recorder():
    """The fleet-merge invariant the driver rests on: per-worker histograms
    merged by bucket addition report byte-identical percentiles to one
    histogram that saw every sample itself."""
    rng = random.Random(17)
    samples = [rng.expovariate(200.0) for _ in range(5000)]

    single = Histogram("loadgen.single.latency")
    workers = [Histogram("loadgen.worker.latency") for _ in range(4)]
    for index, sample in enumerate(samples):
        single.record(sample)
        workers[index % len(workers)].record(sample)

    merged = workers[0]
    for histogram in workers[1:]:
        merged = merged.merge(histogram)

    assert merged.count == single.count
    assert merged.bucket_counts() == single.bucket_counts()
    assert merged.percentiles() == single.percentiles()
    assert merged.sum == pytest.approx(single.sum)


def _report(errors: int = 0) -> LoadReport:
    histogram = Histogram("loadgen.similarity.latency")
    for value in (0.001, 0.002, 0.004, 0.008):
        histogram.record(value)
    operation = OperationReport(
        operation="similarity",
        requests=histogram.count,
        errors=errors,
        error_codes={"overloaded": errors} if errors else {},
        latency=histogram,
    )
    return LoadReport(
        target_rate=10.0,
        arrival="fixed",
        workers=2,
        duration=0.4,
        elapsed=0.4,
        completed=histogram.count,
        errors=errors,
        late_dispatches=1,
        max_dispatch_lag=0.015,
        operations={"similarity": operation},
        latency=Histogram("loadgen.latency").merge(histogram),
    )


def test_bench_dict_shape_and_markers():
    document = _report().to_bench_dict()
    assert set(document) == {"overall", "op_similarity"}
    overall = document["overall"]
    assert overall["throughput_fraction"] == pytest.approx(1.0)
    assert overall["error_rate"] == 0.0
    assert {"p50_ms", "p99_ms", "p999_ms"} <= set(overall)
    # Underscore keys are informational markers the gate never reads.
    assert overall["_late_dispatches"] == 1.0
    assert document["op_similarity"]["_requests"] == 4.0


def test_json_report_is_serializable_and_complete():
    document = _report(errors=2).to_json_dict()
    encoded = json.loads(json.dumps(document))
    assert encoded["errors"] == 2
    assert encoded["error_rate"] == pytest.approx(0.5)
    similarity = encoded["operations"]["similarity"]
    assert similarity["error_codes"] == {"overloaded": 2}
    assert set(similarity["latency_ms"]) == {"mean", "p50", "p99", "p999", "max"}


def test_prometheus_export_covers_counters_and_histograms():
    text = _report(errors=1).to_prometheus()
    assert "loadgen_requests_total 4" in text
    assert "loadgen_errors_total 1" in text
    assert "loadgen_similarity_latency_count 4" in text
    assert 'loadgen_similarity_latency_bucket{le="' in text


def test_format_report_renders_every_operation():
    text = format_report(_report())
    assert "similarity" in text
    assert "p99 ms" in text
    assert "late dispatches 1" in text
