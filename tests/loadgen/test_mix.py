"""Mix parsing and normalization: the CLI spelling and its validation."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import LoadgenError
from repro.loadgen import DEFAULT_MIX, OPERATIONS, normalize_mix, parse_mix


def test_default_mix_is_valid_and_complete():
    normalized = normalize_mix(DEFAULT_MIX)
    assert set(normalized) == set(OPERATIONS)
    assert math.isclose(sum(normalized.values()), 1.0)


def test_normalize_scales_to_probabilities():
    normalized = normalize_mix({"append": 2.0, "similarity": 6.0})
    assert math.isclose(normalized["append"], 0.25)
    assert math.isclose(normalized["similarity"], 0.75)


def test_normalize_drops_zero_weights():
    normalized = normalize_mix({"append": 0.0, "similarity": 1.0})
    assert "append" not in normalized
    assert normalized == {"similarity": 1.0}


@pytest.mark.parametrize(
    "weights",
    [
        {},
        {"append": 0.0},
        {"frobnicate": 1.0},
        {"append": -0.5, "similarity": 1.0},
    ],
)
def test_normalize_rejects_invalid_mixes(weights):
    with pytest.raises(LoadgenError):
        normalize_mix(weights)


def test_parse_mix_round_trips_the_cli_spelling():
    parsed = parse_mix("append=0.2, similarity=0.4,neighbors=0.4")
    assert math.isclose(parsed["append"], 0.2)
    assert math.isclose(parsed["similarity"], 0.4)
    assert math.isclose(parsed["neighbors"], 0.4)


@pytest.mark.parametrize(
    "text",
    [
        "append",
        "append=x",
        "append=0.5,append=0.5",
        "unknown=1.0",
        "",
    ],
)
def test_parse_mix_rejects_malformed_specs(text):
    with pytest.raises(LoadgenError):
        parse_mix(text)
