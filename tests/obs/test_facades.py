"""The counter facades: ``as_dict``/``reset`` and a pinned increment audit.

``EngineCounters``, ``CacheStats``, and ``StorageCounters`` are frozen
snapshots that carry a hidden back-reference to their owner, so
``reset()`` works on a snapshot without widening the owners' APIs.  The
pinned test runs one fixed append/query script and asserts the *exact*
counter values — any change to an increment site (double counting, a
dropped mirror, hits reclassified as misses) fails loudly instead of
drifting.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.config import CONFIG_C1
from repro.engine import AssociationEngine
from repro.engine.cache import CacheStats
from repro.engine.engine import EngineCounters
from repro.exceptions import EngineError, StorageError
from repro.storage import DurableEngine
from repro.storage.durable import StorageCounters

ATTRS = ("A", "B", "C")
VALUES = (0, 1, 2)

ROWS = [
    [0, 0, 0],
    [1, 1, 0],
    [2, 2, 1],
    [0, 0, 1],
    [1, 1, 2],
    [2, 2, 2],
    [0, 1, 0],
    [1, 2, 1],
]


def _scripted_engine() -> AssociationEngine:
    """The fixed append/query script the pinned counts below correspond to."""
    engine = AssociationEngine(ATTRS, CONFIG_C1, values=VALUES)
    engine.append_rows(ROWS)
    engine.refresh()
    engine.similarity("A", "B")  # miss: never computed
    engine.similarity("A", "B")  # hit
    engine.append_row([2, 0, 0])
    engine.refresh()  # bumps stamps: the cached pair goes stale
    engine.similarity("A", "B")  # version miss: entry exists, stamp stale
    engine.neighbors("A", limit=2)  # misses A-C pair + its own key, hits A-B
    return engine


class TestPinnedEngineCounts:
    def test_engine_counters_exact(self):
        engine = _scripted_engine()
        assert engine.counters.as_dict() == {
            "appended_rows": 9,
            "refreshed_heads": 6,  # 3 heads x 2 full refreshes
            "table_increments": 12,
            "table_rebuilds": 12,
            "index_compiles": 0,  # similarity/neighbors never touch the index
            "shard_compiles": 0,
            "full_compiles": 0,
        }

    def test_cache_counters_exact(self):
        engine = _scripted_engine()
        assert engine.cache_stats.as_dict() == {
            "hits": 2,
            "misses": 4,
            "entries": 3,
            "evictions": 0,
            "version_misses": 1,
        }

    def test_version_misses_are_a_subset_of_misses(self):
        # The audit the cache docstring promises: a stale lookup bumps both
        # counters, so misses - version_misses is exactly the number of
        # never-before-computed keys — which (absent evictions) is the
        # number of live entries.
        stats = _scripted_engine().cache_stats
        assert 0 <= stats.version_misses <= stats.misses
        assert stats.misses - stats.version_misses == stats.entries
        assert stats.evictions == 0

    def test_obs_mirrors_match_facade_counts(self):
        registry = obs.enable()
        engine = _scripted_engine()
        counters = registry.snapshot()["counters"]
        assert counters["engine.appended_rows"] == engine.counters.appended_rows
        assert counters["engine.refreshed_heads"] == engine.counters.refreshed_heads
        assert counters["engine.table_increments"] == engine.counters.table_increments
        assert counters["engine.table_rebuilds"] == engine.counters.table_rebuilds
        assert counters["cache.hits"] == engine.cache_stats.hits
        assert counters["cache.misses"] == engine.cache_stats.misses
        assert counters["cache.version_misses"] == engine.cache_stats.version_misses
        assert counters["cache.evictions"] == engine.cache_stats.evictions


class TestEngineCountersFacade:
    def test_reset_through_snapshot(self):
        engine = _scripted_engine()
        engine.counters.reset()
        assert engine.counters.as_dict() == {
            "appended_rows": 0,
            "refreshed_heads": 0,
            "table_increments": 0,
            "table_rebuilds": 0,
            "index_compiles": 0,
            "shard_compiles": 0,
            "full_compiles": 0,
        }
        # Counting resumes from zero; the engine itself is untouched.
        engine.append_row([0, 0, 0])
        assert engine.counters.appended_rows == 1
        assert engine.num_observations == 10

    def test_detached_snapshot_reset_raises(self):
        detached = EngineCounters(
            appended_rows=1, refreshed_heads=0, table_increments=0, table_rebuilds=0
        )
        with pytest.raises(EngineError):
            detached.reset()

    def test_owner_is_invisible_to_equality_and_as_dict(self):
        engine = _scripted_engine()
        attached = engine.counters
        detached = EngineCounters(**attached.as_dict())
        assert attached == detached
        assert "_owner" not in attached.as_dict()


class TestCacheStatsFacade:
    def test_reset_keeps_entries(self):
        engine = _scripted_engine()
        engine.cache_stats.reset()
        stats = engine.cache_stats
        assert (stats.hits, stats.misses, stats.version_misses) == (0, 0, 0)
        assert stats.entries == 3  # cached values survive a counter reset

    def test_detached_snapshot_reset_raises(self):
        detached = CacheStats(hits=0, misses=0, entries=0, evictions=0)
        with pytest.raises(EngineError):
            detached.reset()

    def test_owner_is_invisible_to_equality_and_as_dict(self):
        engine = _scripted_engine()
        attached = engine.cache_stats
        assert attached == CacheStats(**attached.as_dict())
        assert "_owner" not in attached.as_dict()


class TestStorageCountersFacade:
    def _scripted_store(self, directory):
        durable = DurableEngine.create(
            directory, attributes=ATTRS, config=CONFIG_C1, values=VALUES
        )
        durable.append_rows(ROWS[:2])
        durable.append_rows(ROWS[2:4])
        durable.checkpoint()
        durable.append_rows(ROWS[4:5])
        return durable

    def test_pinned_session_counts_and_reset(self, tmp_path):
        durable = self._scripted_store(tmp_path / "store")
        try:
            assert durable.counters.as_dict() == {
                "appended_batches": 3,
                "checkpoints": 1,
                "deltas_written": 1,
                "compactions": 0,
                "recovered_rows": 0,
                "count_states_restored": 0,
            }
            durable.counters.reset()
            assert durable.counters.as_dict() == {
                "appended_batches": 0,
                "checkpoints": 0,
                "deltas_written": 0,
                "compactions": 0,
                "recovered_rows": 0,
                "count_states_restored": 0,
            }
        finally:
            durable.close()

    def test_reopen_session_counts_recovery(self, tmp_path):
        durable = self._scripted_store(tmp_path / "store")
        durable.close()
        durable = DurableEngine.open(tmp_path / "store")
        try:
            durable.engine.refresh()
            counters = durable.counters
            assert counters.appended_batches == 0  # fresh session
            assert counters.recovered_rows == 5
            assert counters.count_states_restored == 12
        finally:
            durable.close()

    def test_detached_snapshot_reset_raises(self):
        detached = StorageCounters(
            appended_batches=0,
            checkpoints=0,
            deltas_written=0,
            compactions=0,
            recovered_rows=0,
        )
        with pytest.raises(StorageError):
            detached.reset()

    def test_owner_is_invisible_to_equality_and_as_dict(self, tmp_path):
        durable = self._scripted_store(tmp_path / "store")
        try:
            attached = durable.counters
            assert attached == StorageCounters(**attached.as_dict())
            assert "_owner" not in attached.as_dict()
        finally:
            durable.close()
