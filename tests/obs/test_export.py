"""Prometheus text exposition and the ``stats`` pretty-printer."""

from __future__ import annotations

from repro.obs import MetricsRegistry, format_snapshot, to_prometheus


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cache.hits", "lookups served from cache").inc(3)
    registry.gauge("wal.bytes").set(2.5)
    histogram = registry.histogram("engine.append_rows")
    histogram.record(0.001)
    histogram.record(0.002)
    histogram.record(50.0)
    return registry


class TestPrometheus:
    def test_counter_rendering(self):
        text = to_prometheus(_sample_registry())
        assert "# HELP cache_hits lookups served from cache" in text
        assert "# TYPE cache_hits_total counter" in text
        assert "cache_hits_total 3" in text

    def test_gauge_rendering(self):
        text = to_prometheus(_sample_registry())
        assert "# TYPE wal_bytes gauge" in text
        assert "wal_bytes 2.5" in text

    def test_histogram_buckets_are_cumulative_and_terminated(self):
        text = to_prometheus(_sample_registry())
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("engine_append_rows_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative → non-decreasing
        assert buckets[-1] == 'engine_append_rows_bucket{le="+Inf"} 3'
        assert "engine_append_rows_sum 50.003" in text
        assert "engine_append_rows_count 3" in text

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c d").inc()
        assert "a_b_c_d_total 1" in to_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestFormatSnapshot:
    def test_empty_snapshot_has_placeholder(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert format_snapshot(empty) == "(no instruments recorded)\n"
        assert format_snapshot({}) == "(no instruments recorded)\n"

    def test_sections_and_values_present(self):
        text = format_snapshot(_sample_registry().snapshot())
        assert "counters:" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "cache.hits" in text
        assert "engine.append_rows" in text
        header = next(
            line for line in text.splitlines() if line.lstrip().startswith("name")
        )
        for column in ("count", "mean", "p50", "p99", "p999", "max"):
            assert column in header

    def test_empty_histogram_rendered_as_zero_count(self):
        registry = MetricsRegistry()
        registry.histogram("engine.idle")
        text = format_snapshot(registry.snapshot())
        assert "engine.idle" in text

    def test_round_trips_through_json_snapshot(self):
        import json

        registry = _sample_registry()
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert format_snapshot(snapshot) == format_snapshot(registry.snapshot())
