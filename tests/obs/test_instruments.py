"""Unit and property tests for counters, gauges, and quantile histograms.

The histogram's documented contract is checked with hypothesis against
``numpy.percentile``: the streaming estimate for any quantile must land
between the ``method="lower"`` and ``method="higher"`` order statistics
widened by the documented relative error (the geometric bucket growth
factor minus one).  Merging is checked to be exact: bucket counts add,
so merge order can never change a quantile bit.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    default_latency_boundaries,
)

#: The documented worst-case relative quantile error of the default
#: geometric boundaries (growth factor minus one, ~12.2%).
EPS = 10.0 ** (1.0 / 20.0) - 1.0

#: Samples strictly inside the covered latency range (100 ns .. 100 s),
#: where the relative-error bound is promised.
latency_samples = st.lists(
    st.floats(min_value=1e-6, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=300,
)


def _filled(samples) -> Histogram:
    histogram = Histogram("test.latency")
    for sample in samples:
        histogram.record(sample)
    return histogram


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(-1.0)
        assert gauge.value == 1.5
        assert gauge.snapshot() == 1.5

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(9.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogramBasics:
    def test_empty_snapshot_is_count_zero(self):
        histogram = Histogram("h")
        assert histogram.snapshot() == {"count": 0}
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.mean)

    def test_exact_count_sum_min_max(self):
        histogram = _filled([0.001, 0.002, 0.004])
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.007)
        assert histogram.min == 0.001
        assert histogram.max == 0.004
        assert histogram.mean == pytest.approx(0.007 / 3)

    def test_overflow_observation_clamps_to_max(self):
        histogram = _filled([1e6])  # far above the covered range
        assert histogram.quantile(0.5) == 1e6
        assert histogram.bucket_counts()[-1] == 1

    def test_quantile_outside_unit_interval_rejected(self):
        histogram = _filled([0.1])
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)

    def test_fixed_boundaries_use_arithmetic_midpoints(self):
        histogram = Histogram("f", boundaries=[1.0, 2.0, 4.0])
        assert histogram.relative_error is None
        histogram.record(1.2)
        histogram.record(1.7)
        # Both land in the (1.0, 2.0] bucket; its arithmetic midpoint is
        # 1.5, inside the observed [1.2, 1.7] so no clamping applies.
        assert histogram.quantile(0.5) == 1.5

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("f", boundaries=[])
        with pytest.raises(ObservabilityError):
            Histogram("f", boundaries=[1.0, 1.0])
        with pytest.raises(ObservabilityError):
            Histogram("f", boundaries=[2.0, 1.0])

    def test_default_boundaries_are_geometric_and_shared(self):
        bounds = default_latency_boundaries()
        assert bounds is default_latency_boundaries()
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(1.0 + EPS) for r in ratios)
        histogram = Histogram("h")
        assert histogram.relative_error == pytest.approx(EPS)

    def test_reset_keeps_boundaries(self):
        histogram = _filled([0.01, 0.02])
        histogram.reset()
        assert histogram.count == 0
        assert histogram.snapshot() == {"count": 0}
        assert histogram.boundaries == default_latency_boundaries()


class TestHistogramQuantileProperty:
    @settings(max_examples=200, deadline=None)
    @given(samples=latency_samples)
    def test_quantiles_track_numpy_percentile(self, samples):
        histogram = _filled(samples)
        array = np.asarray(samples)
        for quantile, percentile in ((0.5, 50.0), (0.99, 99.0), (0.999, 99.9)):
            estimate = histogram.quantile(quantile)
            # The estimator picks the ``ceil(q * n)``-th smallest sample's
            # bucket; that rank always lies between numpy's "lower" and
            # "higher" order statistics, and the geometric bucket midpoint
            # is within the documented relative error of any sample in the
            # bucket.
            low = float(np.percentile(array, percentile, method="lower"))
            high = float(np.percentile(array, percentile, method="higher"))
            assert low * (1.0 - EPS) <= estimate <= high * (1.0 + EPS)

    @settings(max_examples=100, deadline=None)
    @given(samples=latency_samples)
    def test_percentiles_dict_matches_quantile(self, samples):
        histogram = _filled(samples)
        trio = histogram.percentiles()
        assert trio["p50"] == histogram.quantile(0.50)
        assert trio["p99"] == histogram.quantile(0.99)
        assert trio["p999"] == histogram.quantile(0.999)


class TestHistogramMerge:
    @settings(max_examples=100, deadline=None)
    @given(
        a=latency_samples,
        b=st.lists(
            st.floats(min_value=1e-6, max_value=50.0, allow_nan=False), max_size=300
        ),
        c=st.lists(
            st.floats(min_value=1e-6, max_value=50.0, allow_nan=False), max_size=300
        ),
    )
    def test_merge_is_associative_commutative_and_exact(self, a, b, c):
        ha, hb, hc = _filled(a), _filled(b), _filled(c)
        left = ha.merge(hb).merge(hc)
        right = ha.merge(hb.merge(hc))
        assert left.bucket_counts() == right.bucket_counts()
        assert left.count == right.count
        assert ha.merge(hb).bucket_counts() == hb.merge(ha).bucket_counts()
        # Merging equals having recorded everything into one histogram.
        combined = _filled(a + b + c)
        assert left.bucket_counts() == combined.bucket_counts()
        assert left.count == combined.count
        assert left.min == combined.min
        assert left.max == combined.max
        for quantile in (0.5, 0.99, 0.999):
            assert left.quantile(quantile) == right.quantile(quantile)
            assert left.quantile(quantile) == combined.quantile(quantile)

    def test_merge_requires_matching_boundaries(self):
        default = Histogram("a")
        fixed = Histogram("b", boundaries=[1.0, 2.0])
        with pytest.raises(ObservabilityError):
            default.merge(fixed)

    def test_merge_leaves_inputs_untouched(self):
        a = _filled([0.001])
        b = _filled([0.002])
        merged = a.merge(b)
        assert merged.count == 2
        assert a.count == 1
        assert b.count == 1
