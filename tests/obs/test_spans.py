"""Tracer behaviour: nesting, attributes, bounding, Chrome export."""

from __future__ import annotations

import json
import threading

from repro import obs
from repro.obs import Tracer, to_chrome_trace


class TestNesting:
    def test_child_points_at_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # completion order: inner finishes first
        assert inner.name == "inner"
        assert outer.name == "outer"
        assert outer.parent_id == 0
        assert inner.parent_id == outer.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second, parent = tracer.spans
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id

    def test_attributes_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("op", rows=5) as span:
            span.set_attribute("outcome", "ok")
        (record,) = tracer.spans
        assert record.attributes == {"rows": 5, "outcome": "ok"}

    def test_duration_and_thread_recorded(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        (record,) = tracer.spans
        assert record.duration_ns >= 0
        assert record.duration_s == record.duration_ns / 1e9
        assert record.thread_id == threading.get_ident()


class TestBounding:
    def test_spans_beyond_cap_are_counted_as_dropped(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("op"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_clear_drops_spans_and_dropped_count(self):
        tracer = Tracer(max_spans=1)
        for _ in range(3):
            with tracer.span("op"):
                pass
        tracer.clear()
        assert tracer.spans == ()
        assert tracer.dropped == 0


class TestChromeExport:
    def test_trace_document_shape(self):
        tracer = Tracer()
        with tracer.span("outer", rows=3):
            with tracer.span("inner"):
                pass
        document = to_chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert [event["name"] for event in events] == ["inner", "outer"]
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["pid"] == 1
            assert event["tid"] == threading.get_ident()
        assert events[1]["args"] == {"rows": 3}
        # The document must survive a JSON round-trip (the CLI writes it).
        assert json.loads(json.dumps(document)) == document

    def test_tracer_convenience_method_matches_export(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        assert tracer.to_chrome_trace() == to_chrome_trace(tracer)

    def test_empty_tracer_exports_empty_event_list(self):
        assert to_chrome_trace(Tracer()) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


class TestObsIntegration:
    def test_timed_emits_nested_spans_under_active_tracer(self):
        obs.enable(tracing=True)
        with obs.timed("t.span.outer"):
            with obs.timed("t.span.inner", step=2):
                pass
        tracer = obs.active_tracer()
        inner, outer = tracer.spans
        assert inner.parent_id == outer.span_id
        assert inner.attributes == {"step": 2}

    def test_null_tracer_records_nothing(self):
        obs.enable()  # metrics only
        with obs.timed("t.span.dark"):
            pass
        assert obs.active_tracer().spans == ()
