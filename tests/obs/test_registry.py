"""Registry, handle, and activation-state behaviour.

The load-bearing property is the handle indirection: instrumented modules
create handles at import time, long before anyone decides whether this
process collects metrics.  ``enable`` must therefore retarget every
pre-existing handle in place, and ``disable`` must turn them all back
into no-ops without touching the (still readable) registry.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.exceptions import ObservabilityError
from repro.obs import MetricsRegistry, NULL_REGISTRY, Tracer


class TestMetricsRegistry:
    def test_instruments_are_created_once_and_shared(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", "first description wins")
        assert registry.counter("x") is counter
        assert len(registry) == 1

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_snapshot_groups_by_kind_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("depth").set(3.0)
        registry.histogram("lat").record(0.01)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a.count", "b.count"]
        assert snapshot["counters"]["b.count"] == 2
        assert snapshot["gauges"]["depth"] == 3.0
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_zeroes_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").record(0.1)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0
        assert len(registry) == 2  # names survive a reset

    def test_null_registry_is_inert(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("anything").inc(100)
        NULL_REGISTRY.histogram("lat").record(1.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert len(NULL_REGISTRY) == 0


class TestHandles:
    def test_factories_return_shared_handles(self):
        assert obs.counter("t.reg.c") is obs.counter("t.reg.c")
        assert obs.timer("t.reg.t") is obs.timer("t.reg.t")
        assert obs.gauge("t.reg.g") is obs.gauge("t.reg.g")

    def test_disabled_handles_are_noops(self):
        counter = obs.counter("t.reg.disabled")
        counter.inc(7)
        assert counter.value == 0
        gauge = obs.gauge("t.reg.disabled_gauge")
        gauge.set(4.0)
        assert gauge.value == 0.0

    def test_enable_retargets_preexisting_handles(self):
        counter = obs.counter("t.reg.pre")
        counter.inc()  # lost: no registry yet
        registry = obs.enable()
        counter.inc(3)
        assert counter.value == 3
        assert registry.counter("t.reg.pre").value == 3

    def test_disable_detaches_but_registry_stays_readable(self):
        counter = obs.counter("t.reg.detach")
        registry = obs.enable()
        counter.inc(2)
        obs.disable()
        counter.inc(50)  # no-op again
        assert counter.value == 0
        assert registry.counter("t.reg.detach").value == 2

    def test_enable_accepts_an_existing_registry(self):
        mine = MetricsRegistry()
        returned = obs.enable(mine)
        assert returned is mine
        assert obs.active_registry() is mine

    def test_active_registry_defaults_to_null(self):
        assert obs.active_registry() is NULL_REGISTRY
        assert not obs.active_tracer().enabled


class TestTimers:
    def test_timed_always_measures_elapsed(self):
        with obs.timed("t.reg.elapsed") as timer:
            pass
        assert timer.elapsed >= 0.0

    def test_timed_records_to_histogram_when_enabled(self):
        registry = obs.enable()
        with obs.timed("t.reg.lat"):
            pass
        with obs.timed("t.reg.lat"):
            pass
        histogram = registry.histogram("t.reg.lat")
        assert histogram.count == 2
        assert histogram.sum >= 0.0

    def test_timed_records_nothing_when_disabled(self):
        with obs.timed("t.reg.dark"):
            pass
        registry = obs.enable()
        assert registry.histogram("t.reg.dark").count == 0

    def test_observe_feeds_external_measurements(self):
        registry = obs.enable()
        obs.timer("t.reg.obs").observe(0.25)
        histogram = registry.histogram("t.reg.obs")
        assert histogram.count == 1
        assert histogram.sum == 0.25

    def test_timed_records_even_when_body_raises(self):
        registry = obs.enable()
        with pytest.raises(RuntimeError):
            with obs.timed("t.reg.raise"):
                raise RuntimeError("boom")
        assert registry.histogram("t.reg.raise").count == 1


class TestTracingActivation:
    def test_enable_without_tracing_keeps_null_tracer(self):
        obs.enable()
        assert not obs.active_tracer().enabled

    def test_enable_with_tracing_installs_tracer(self):
        obs.enable(tracing=True)
        tracer = obs.active_tracer()
        assert tracer.enabled
        with obs.timed("t.reg.span", depth=1):
            pass
        assert [span.name for span in tracer.spans] == ["t.reg.span"]
        assert tracer.spans[0].attributes == {"depth": 1}

    def test_enable_accepts_an_explicit_tracer(self):
        mine = Tracer(max_spans=10)
        obs.enable(tracer=mine)
        assert obs.active_tracer() is mine

    def test_disable_restores_null_tracer(self):
        obs.enable(tracing=True)
        obs.disable()
        assert not obs.active_tracer().enabled
