"""End-to-end observability over a durable replay.

The tentpole acceptance check: running a durable workload with the
registry and tracer enabled yields one snapshot whose instruments span
every layer (engine, cache, storage, WAL) and a loadable Chrome trace
whose spans nest correctly — and running the *same* workload with
observability disabled returns bit-identical query results.
"""

from __future__ import annotations

import json

from repro import obs
from repro.core.config import CONFIG_C1
from repro.storage import DurableEngine

ATTRS = ("A", "B", "C", "D")
VALUES = (0, 1, 2)

ROWS = [
    [(i + j * j) % 3 for j in range(4)]
    for i in range(30)
]


def _run_workload(directory):
    """Create, stream, checkpoint, query, close, reopen, and query again."""
    durable = DurableEngine.create(
        directory, attributes=ATTRS, config=CONFIG_C1, values=VALUES, sync=True
    )
    try:
        durable.append_rows(ROWS[:20])
        durable.checkpoint()
        for row in ROWS[20:]:
            durable.append_rows([row])
        engine = durable.engine
        engine.refresh()
        results = [
            engine.similarity("A", "B"),
            engine.similarity("C", "D"),
            engine.neighbors("A", limit=3),
            engine.classify({"A": 0, "B": 1}, ["C"]),
        ]
    finally:
        durable.close()
    durable = DurableEngine.open(directory)
    try:
        engine = durable.engine
        engine.refresh()
        results.append(engine.similarity("A", "B"))
        results.append(engine.dominators(algorithm="set-cover", top_fraction=0.5))
        results.append(engine.dominators(algorithm="greedy"))
    finally:
        durable.close()
    return results


class TestSnapshotCoverage:
    def test_one_run_covers_every_instrumented_subsystem(self, tmp_path):
        registry = obs.enable(tracing=True)
        _run_workload(tmp_path / "store")
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        histograms = snapshot["histograms"]
        for prefix in ("engine.", "cache.", "storage.", "wal."):
            assert any(name.startswith(prefix) for name in counters), prefix
        # The cache reports counters only — its latency is the engine's
        # query timers — so histogram coverage spans the other three.
        for prefix in ("engine.", "storage.", "wal."):
            assert any(name.startswith(prefix) for name in histograms), prefix
        # The load-bearing instruments actually recorded something.  The
        # engine sees every row twice: once live, once via WAL replay on
        # reopen — the process-wide counter is the sum.
        assert (
            counters["engine.appended_rows"]
            == len(ROWS) + counters["storage.recovered_rows"]
        )
        assert counters["storage.appended_batches"] == 11
        assert counters["storage.checkpoints"] == 1
        assert counters["storage.recovered_rows"] > 0
        assert counters["wal.syncs"] > 0
        assert counters["cache.hits"] + counters["cache.misses"] > 0
        assert histograms["storage.open"]["count"] == 1
        # 11 row batches plus the checkpoint's marker frame.
        assert histograms["wal.append"]["count"] == 12
        assert histograms["wal.fsync"]["count"] == counters["wal.syncs"]
        assert histograms["engine.append_rows"]["count"] >= 11
        for name in ("engine.query.similarity", "engine.query.classify"):
            assert histograms[name]["count"] > 0
        # The numeric-kernel layer: greedy cover scores every round through
        # the exactly-rounded segmented sum, and the first refresh of each
        # head brings all its candidates up to date in batched syncs.
        assert histograms["kernel.segmented_fsum"]["count"] > 0
        assert histograms["engine.batch_refresh"]["count"] > 0
        batch_sizes = histograms["refresh.candidates_per_batch"]
        assert batch_sizes["count"] == histograms["engine.batch_refresh"]["count"]
        assert batch_sizes["min"] >= 2
        # Durations are sane: each histogram's sum is positive seconds.
        assert histograms["storage.open"]["sum"] > 0.0

    def test_snapshot_is_json_serializable(self, tmp_path):
        registry = obs.enable()
        _run_workload(tmp_path / "store")
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestTraceStructure:
    def test_open_phases_nest_under_the_open_span(self, tmp_path):
        obs.enable(tracing=True)
        _run_workload(tmp_path / "store")
        tracer = obs.active_tracer()
        spans = tracer.spans
        assert tracer.dropped == 0
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (open_span,) = by_name["storage.open"]
        for child in ("storage.open.base_load", "storage.open.wal_replay"):
            (child_span,) = by_name[child]
            assert child_span.parent_id == open_span.span_id
        # Engine appends triggered by WAL replay nest inside the replay span.
        (replay_span,) = by_name["storage.open.wal_replay"]
        replayed = [
            s
            for s in by_name["engine.append_rows"]
            if s.parent_id == replay_span.span_id
        ]
        assert replayed

    def test_chrome_trace_document_is_valid(self, tmp_path):
        obs.enable(tracing=True)
        _run_workload(tmp_path / "store")
        document = obs.to_chrome_trace(obs.active_tracer())
        events = document["traceEvents"]
        assert events
        for event in events:
            assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
        json.dumps(document)  # must serialize cleanly


class TestZeroCostWhenDisabled:
    def test_results_identical_with_and_without_observability(self, tmp_path):
        baseline = _run_workload(tmp_path / "plain")  # obs disabled (autouse)
        obs.enable(tracing=True)
        try:
            observed = _run_workload(tmp_path / "observed")
        finally:
            obs.disable()
        assert baseline == observed

    def test_disabled_run_records_nothing(self, tmp_path):
        _run_workload(tmp_path / "plain")
        # Enabling afterwards re-resolves every module handle against the
        # fresh registry (instantiating the named instruments), but none of
        # the disabled run's activity leaked into them.
        registry = obs.enable()
        snapshot = registry.snapshot()
        assert all(value == 0 for value in snapshot["counters"].values())
        assert all(h == {"count": 0} for h in snapshot["histograms"].values())
