"""Observability test fixtures.

The obs activation state is process-global (that is the point: one
registry per process), so every test here starts and ends disabled —
a test that enables a registry or tracer can never leak it into its
neighbours.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _isolated_obs():
    obs.disable()
    yield
    obs.disable()
