"""Integration tests: every table/figure runner produces rows with the paper's shape."""

from __future__ import annotations

import pytest

from repro.core.config import CONFIG_C1, CONFIG_C2
from repro.experiments.figures import (
    run_figure_5_1,
    run_figure_5_2,
    run_figure_5_3,
    run_figure_5_4,
)
from repro.experiments.model_stats import run_model_stats
from repro.experiments.reporting import format_rows, format_table, summarize_series
from repro.experiments.tables import run_table_5_1, run_table_5_2, run_table_5_3, run_table_5_4
from repro.experiments.workloads import default_workload


@pytest.fixture(scope="module")
def workload():
    """A small two-configuration workload shared by all runner tests."""
    return default_workload(scale=0.2, num_days=160, seed=7, configs=(CONFIG_C1, CONFIG_C2))


class TestModelStats:
    def test_one_row_per_config(self, workload):
        rows = run_model_stats(workload)
        assert [row.config for row in rows] == ["C1", "C2"]

    def test_hyperedges_mean_acv_at_least_edges(self, workload):
        for row in run_model_stats(workload):
            assert row.mean_acv_hyperedges >= row.mean_acv_edges - 0.05

    def test_mean_acv_decreases_with_k(self, workload):
        c1, c2 = run_model_stats(workload)
        assert c2.mean_acv_edges < c1.mean_acv_edges


class TestTable51:
    def test_rows_cover_selected_series_and_configs(self, workload):
        rows = run_table_5_1(workload)
        assert rows
        assert {row.config for row in rows} == {"C1", "C2"}

    def test_hyperedge_acv_usually_at_least_edge_acv(self, workload):
        rows = run_table_5_1(workload)
        wins = sum(1 for row in rows if row.top_hyperedge_acv >= row.top_edge_acv - 1e-9)
        assert wins >= 0.7 * len(rows)

    def test_tails_do_not_contain_the_series(self, workload):
        for row in run_table_5_1(workload):
            assert row.series != row.top_edge_tail
            assert row.series not in row.top_hyperedge_tail


class TestTable52:
    def test_hyperedge_beats_constituent_edges(self, workload):
        rows = run_table_5_2(workload)
        assert rows
        assert all(row.hyperedge_wins for row in rows)

    def test_constituent_edges_match_hyperedge_tail(self, workload):
        for row in run_table_5_2(workload):
            assert len(row.hyperedge_tail) == 2


class TestTables53And54:
    def test_table_5_3_shape(self, workload):
        rows = run_table_5_3(workload, top_fractions=(0.4,), max_targets=6)
        assert rows
        for row in rows:
            assert row.algorithm == "algorithm5"
            assert 1 <= row.dominator_size < len(workload.panel)
            assert 0.0 <= row.percent_covered <= 100.0
            assert 0.0 <= row.in_sample_confidence <= 1.0
            assert 0.0 <= row.out_sample_confidence <= 1.0

    def test_table_5_4_shape(self, workload):
        rows = run_table_5_4(workload, top_fractions=(0.4,), max_targets=6)
        assert rows
        assert all(row.algorithm == "algorithm6" for row in rows)

    def test_dominator_covers_most_series(self, workload):
        rows = run_table_5_3(workload, top_fractions=(0.4,), max_targets=4)
        assert all(row.percent_covered >= 80.0 for row in rows)

    def test_classifier_beats_chance_in_sample(self, workload):
        for row in run_table_5_3(workload, top_fractions=(0.4,), max_targets=6):
            k = CONFIG_C1.k if row.config == "C1" else CONFIG_C2.k
            assert row.in_sample_confidence > 1.0 / k


class TestFigures:
    def test_figure_5_1_degrees(self, workload):
        rows = run_figure_5_1(workload)
        assert len(rows) == len(workload.panel)
        assert all(row.weighted_in_degree >= 0 for row in rows)
        assert any(row.weighted_out_degree > 0 for row in rows)

    def test_figure_5_2_similarities_in_range(self, workload):
        rows = run_figure_5_2(workload, max_pairs=60)
        assert 0 < len(rows) <= 60
        for row in rows:
            assert 0.0 <= row.in_similarity <= 1.0
            assert 0.0 <= row.out_similarity <= 1.0
            assert 0.0 <= row.euclidean_similarity <= 1.0

    def test_figure_5_2_hypergraph_similarity_more_dispersed(self, workload):
        """The paper's claim: association similarity separates pairs more than Euclidean similarity."""
        rows = run_figure_5_2(workload, max_pairs=120)
        in_sims = [row.in_similarity for row in rows]
        euclids = [row.euclidean_similarity for row in rows]
        spread_in = max(in_sims) - min(in_sims)
        spread_euclid = max(euclids) - min(euclids)
        assert spread_in >= spread_euclid * 0.8

    def test_figure_5_3_clustering(self, workload):
        summary, clustering, graph = run_figure_5_3(workload)
        assert summary.num_nodes == len(graph.nodes)
        assert summary.t == len(clustering.centers)
        assert summary.mean_cluster_diameter <= summary.overall_mean_distance + 1e-9
        assert 0.0 <= summary.sector_purity <= 1.0

    def test_figure_5_4_rows(self, workload):
        rows = run_figure_5_4(workload, num_windows=2)
        assert rows
        for row in rows:
            assert row.algorithm in {"algorithm5", "algorithm6"}
            assert 0.0 <= row.in_sample_confidence <= 1.0
            assert 0.0 <= row.out_sample_confidence <= 1.0


class TestReporting:
    def test_format_rows(self, workload):
        text = format_rows(run_model_stats(workload))
        assert "config" in text
        assert "C1" in text

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_requires_dataclasses(self):
        with pytest.raises(TypeError):
            format_rows([{"a": 1}])

    def test_format_table(self):
        text = format_table(["x", "y"], [[1, 2.5], ["abc", (1, 2)]])
        assert "abc" in text
        assert "2.500" in text

    def test_summarize_series(self):
        summary = summarize_series([1.0, 2.0, 3.0])
        assert summary == {"min": 1.0, "mean": 2.0, "max": 3.0}
        assert summarize_series([]) == {"min": 0.0, "mean": 0.0, "max": 0.0}
