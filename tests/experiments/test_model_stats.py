"""Tests for the Section 5.1.2 model-statistics runner helpers."""

from __future__ import annotations

import pytest

from repro.core.config import CONFIG_C1, CONFIG_C2
from repro.experiments.model_stats import ModelStatsRow, config_of, run_model_stats
from repro.experiments.workloads import default_workload


@pytest.fixture(scope="module")
def workload():
    return default_workload(scale=0.15, num_days=120, seed=6, configs=(CONFIG_C1, CONFIG_C2))


class TestModelStats:
    def test_rows_carry_configuration_parameters(self, workload):
        rows = run_model_stats(workload)
        by_name = {row.config: row for row in rows}
        assert by_name["C1"].k == 3 and by_name["C1"].gamma_edge == pytest.approx(1.15)
        assert by_name["C2"].k == 5 and by_name["C2"].gamma_hyperedge == pytest.approx(1.12)

    def test_rows_are_dataclasses_with_counts(self, workload):
        for row in run_model_stats(workload):
            assert isinstance(row, ModelStatsRow)
            assert row.directed_edges >= 0
            assert row.hyperedges_2to1 >= 0
            assert 0.0 <= row.mean_acv_edges <= 1.0
            assert 0.0 <= row.mean_acv_hyperedges <= 1.0

    def test_config_of_lookup(self, workload):
        assert config_of(workload, "C1") is CONFIG_C1
        assert config_of(workload, "C2") is CONFIG_C2

    def test_config_of_unknown_name(self, workload):
        with pytest.raises(KeyError):
            config_of(workload, "C9")
