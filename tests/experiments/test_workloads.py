"""Tests for the experiment workload bundle."""

from __future__ import annotations

import pytest

from repro.core.config import CONFIG_C1
from repro.experiments.workloads import default_workload


@pytest.fixture(scope="module")
def workload():
    return default_workload(scale=0.2, num_days=140, seed=4, configs=(CONFIG_C1,))


class TestWorkload:
    def test_split_day_respects_fraction(self, workload):
        assert workload.split_day == int(workload.panel.num_days * 0.8)

    def test_train_and_test_panels_partition_days(self, workload):
        train = workload.train_panel()
        test = workload.test_panel()
        # The split day is shared so the first test return is defined.
        assert train.num_days + test.num_days == workload.panel.num_days + 1

    def test_database_caching(self, workload):
        first = workload.database(CONFIG_C1, "train")
        second = workload.database(CONFIG_C1, "train")
        assert first is second

    def test_database_values_match_config_k(self, workload):
        db = workload.database(CONFIG_C1, "train")
        assert db.values <= frozenset(range(1, CONFIG_C1.k + 1))

    def test_hypergraph_caching_and_stats(self, workload):
        hypergraph = workload.hypergraph(CONFIG_C1)
        assert workload.hypergraph(CONFIG_C1) is hypergraph
        stats = workload.build_stats(CONFIG_C1)
        assert stats.total_edges == hypergraph.num_edges

    def test_selected_series_one_per_sector(self, workload):
        selected = workload.selected_series()
        sectors = [workload.panel.sector_of(name) for name in selected]
        assert len(sectors) == len(set(sectors))

    def test_num_sub_sectors_positive(self, workload):
        assert workload.num_sub_sectors() >= 1

    def test_default_workload_configs(self):
        workload = default_workload(scale=0.2, num_days=120)
        assert [c.name for c in workload.configs] == ["C1", "C2"]

    def test_workload_is_deterministic(self):
        a = default_workload(scale=0.2, num_days=120, seed=9)
        b = default_workload(scale=0.2, num_days=120, seed=9)
        assert a.panel.names == b.panel.names
        assert a.panel.get(a.panel.names[0]).prices == b.panel.get(b.panel.names[0]).prices
