"""Tests for the ``repro-experiments`` command-line entry point."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, _run_one, main
from repro.experiments.workloads import default_workload


@pytest.fixture(scope="module")
def tiny_workload():
    return default_workload(scale=0.15, num_days=120, seed=2)


class TestRunOne:
    def test_every_experiment_name_is_dispatchable(self, tiny_workload):
        # Only the cheap runners are executed end to end here; the expensive
        # ones are covered by the benchmark harness.  This test checks that
        # every advertised name resolves to a runner without raising.
        cheap = {"model-stats", "table-5.1", "table-5.2", "figure-5.1"}
        for name in cheap:
            output = _run_one(name, tiny_workload)
            assert isinstance(output, str) and output

    def test_unknown_experiment_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            _run_one("table-9.9", tiny_workload)

    def test_experiment_registry_matches_paper_artifacts(self):
        assert set(EXPERIMENTS) == {
            "model-stats",
            "table-5.1",
            "table-5.2",
            "table-5.3",
            "table-5.4",
            "figure-5.1",
            "figure-5.2",
            "figure-5.3",
            "figure-5.4",
        }


class TestMain:
    def test_main_runs_single_experiment(self, capsys):
        exit_code = main(["model-stats", "--scale", "0.15", "--days", "120", "--seed", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "model-stats" in captured
        assert "C1" in captured

    def test_main_writes_output_file(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        exit_code = main(
            [
                "model-stats",
                "--scale",
                "0.15",
                "--days",
                "120",
                "--seed",
                "2",
                "--output",
                str(output),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        content = output.read_text()
        assert "model-stats" in content
        assert "C1" in content

    def test_main_rejects_unknown_choice(self):
        with pytest.raises(SystemExit):
            main(["table-7.7"])


class TestObservabilityFlags:
    SMALL = ["--scale", "0.15", "--days", "120", "--seed", "2"]

    def test_metrics_out_writes_snapshot_and_disables_after(self, tmp_path, capsys):
        from repro import obs

        metrics = tmp_path / "metrics.json"
        exit_code = main(["model-stats", *self.SMALL, "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert exit_code == 0
        snapshot = json.loads(metrics.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert any(name.startswith("engine.") for name in snapshot["counters"])
        # The registry was torn down on the way out.
        assert not obs.active_registry().enabled

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        # model-stats runs the batch builder only (no instrumented spans);
        # the engine replay exercises the traced append/query paths.
        trace = tmp_path / "trace.json"
        exit_code = main(["engine", *self.SMALL, "--trace-out", str(trace)])
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(trace.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]
        assert all(event["ph"] == "X" for event in document["traceEvents"])

    def test_stats_pretty_prints_a_written_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(["model-stats", *self.SMALL, "--metrics-out", str(metrics)])
        capsys.readouterr()
        exit_code = main(["stats", "--metrics-in", str(metrics)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "counters:" in captured
        assert "engine.appended_rows" in captured

    def test_stats_without_metrics_in_runs_the_replay(self, capsys):
        exit_code = main(["stats", *self.SMALL])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "histograms:" in captured
        assert "replay.incremental" in captured


class TestLoadgenCommand:
    """The 'loadgen' subcommand: hermetic self-serve runs and validation."""

    ARGS = [
        "loadgen",
        "--self-serve",
        "--rate",
        "30",
        "--duration",
        "1",
        "--arrival",
        "fixed",
        "--workers",
        "2",
        "--seed",
        "5",
    ]

    def test_self_serve_run_prints_report_and_writes_json(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        prom_path = tmp_path / "metrics.prom"
        exit_code = main(
            self.ARGS
            + ["--report", str(report_path), "--prometheus-out", str(prom_path)]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "achieved rate" in out
        assert "p99 ms" in out
        document = json.loads(report_path.read_text())
        assert document["requests"] == 30
        assert document["operations"]
        assert "loadgen_requests_total 30" in prom_path.read_text()

    def test_custom_mix_restricts_operations(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = main(
            self.ARGS + ["--mix", "similarity=1.0", "--report", str(report_path)]
        )
        assert exit_code == 0
        document = json.loads(report_path.read_text())
        assert set(document["operations"]) == {"similarity"}

    def test_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            main(["loadgen"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--self-serve", "--target", "http://localhost:1"])

    def test_bad_mix_is_a_clean_error(self, capsys):
        exit_code = main(self.ARGS + ["--mix", "frobnicate=1.0"])
        assert exit_code == 2
        assert "loadgen:" in capsys.readouterr().err
