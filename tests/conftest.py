"""Shared fixtures for the test suite.

Small, deterministic artifacts that many test modules need: the worked
example databases of Chapter 3, a tiny synthetic market, and association
hypergraphs built from them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.builder import AssociationHypergraphBuilder  # noqa: E402
from repro.core.config import CONFIG_C1  # noqa: E402
from repro.data.discretization import discretize_panel  # noqa: E402
from repro.data.examples import (  # noqa: E402
    gene_database_discretized,
    patient_database_discretized,
    personal_interest_database_discretized,
)
from repro.data.market import MarketConfig, SectorSpec, SyntheticMarket  # noqa: E402


@pytest.fixture(scope="session")
def patient_db():
    """The discretized Patient database of Table 3.2."""
    return patient_database_discretized()


@pytest.fixture(scope="session")
def gene_db():
    """The discretized Gene database of Table 3.4."""
    return gene_database_discretized()


@pytest.fixture(scope="session")
def interest_db():
    """The discretized Personal-interest database of Table 3.6."""
    return personal_interest_database_discretized()


@pytest.fixture(scope="session")
def tiny_market_panel():
    """A small (four-sector, ~16 series) synthetic market panel."""
    sectors = [
        SectorSpec("Energy", 4, 2, producer_fraction=0.5),
        SectorSpec("Technology", 5, 2, producer_fraction=0.2),
        SectorSpec("Financial", 4, 2, producer_fraction=0.25),
        SectorSpec("Utilities", 3, 1, producer_fraction=0.34),
    ]
    market = SyntheticMarket(MarketConfig(num_days=160, sectors=sectors, seed=5))
    return market.generate()


@pytest.fixture(scope="session")
def tiny_market_db(tiny_market_panel):
    """The tiny market panel discretized with k = 3."""
    return discretize_panel(tiny_market_panel, k=3)


@pytest.fixture(scope="session")
def tiny_hypergraph(tiny_market_db):
    """The association hypergraph of the tiny market under configuration C1."""
    return AssociationHypergraphBuilder(CONFIG_C1).build(tiny_market_db)
