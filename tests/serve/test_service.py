"""Concurrency contracts of the serving core.

The claims under test are exactly the ones the design makes:

* **Snapshot isolation** — a reader holding a published snapshot gets
  bit-identical answers at that version no matter how many appends and
  publishes land concurrently.
* **Appends never block queries** — with the writer thread artificially
  wedged mid-append, queries keep answering from the current snapshot.
* **Atomic publish** — readers only ever observe complete versions, and
  versions are monotone per observer.
* **Tenant lifecycle** — LRU eviction checkpoints to the durable
  directory and a later touch re-opens O(delta) with *zero* shard
  compiles (the checkpointed sidecars are adopted, not rebuilt).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import (
    EngineError,
    ServeError,
    TenantExistsError,
    TenantNotFoundError,
    TenantOverloadedError,
)
from repro.serve import TenantManager

ATTRIBUTES = ["sector", "trend", "volume"]


def rows(count: int, start: int = 0) -> list[list[str]]:
    return [
        [f"s{(start + i) % 3}", f"t{(start + i) % 4}", f"v{(start + i) % 5}"]
        for i in range(count)
    ]


def wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


@pytest.fixture()
def manager(tmp_path):
    with TenantManager(tmp_path / "serve") as m:
        yield m


def reference_answers(engine) -> dict:
    """Every query layer's answer, for bit-identical comparison."""
    attrs = sorted(engine.attributes)
    return {
        "similarity": {
            (a, b): engine.similarity(a, b)
            for i, a in enumerate(attrs)
            for b in attrs[i + 1 :]
        },
        "clusters": engine.clusters(t=2),
        "dominators": engine.dominators(algorithm="set-cover"),
        "classify": engine.classify({"sector": "s0"}),
    }


# ------------------------------------------------------------------ basics
def test_create_append_query_roundtrip(manager):
    stats = manager.create_tenant("market", ATTRIBUTES)
    assert stats.version == 1 and stats.num_rows == 0 and stats.resident
    appended = manager.append("market", rows(60))
    assert appended == 60
    assert wait_until(lambda: manager.snapshot("market").num_rows == 60)
    value, snapshot = manager.query("market", "similarity", first="sector", second="trend")
    assert 0.0 <= value <= 1.0
    assert snapshot.num_rows == 60 and snapshot.version >= 2


def test_append_accepts_mapping_rows(manager):
    manager.create_tenant("m", ATTRIBUTES)
    appended = manager.append(
        "m", [{"sector": "s1", "trend": "t1", "volume": "v1"}]
    )
    assert appended == 1
    assert wait_until(lambda: manager.snapshot("m").num_rows == 1)


def test_dataset_id_validation(manager):
    for bad in ("", ".hidden", "a/b", "x" * 200, 7):
        with pytest.raises(ServeError):
            manager.create_tenant(bad, ATTRIBUTES)
    with pytest.raises(TenantNotFoundError):
        manager.snapshot("never-created")
    manager.create_tenant("dup", ATTRIBUTES)
    with pytest.raises(TenantExistsError):
        manager.create_tenant("dup", ATTRIBUTES)


def test_max_tenants_must_be_positive(tmp_path):
    with pytest.raises(ServeError):
        TenantManager(tmp_path, max_tenants=0)


def test_closed_manager_refuses(tmp_path):
    manager = TenantManager(tmp_path / "serve")
    manager.create_tenant("m", ATTRIBUTES)
    manager.close()
    manager.close()  # idempotent
    with pytest.raises(ServeError):
        manager.snapshot("m")


# ------------------------------------------------------------------ isolation
def test_snapshot_isolation_bit_identical_under_appends(manager):
    manager.create_tenant("iso", ATTRIBUTES)
    manager.append("iso", rows(80))
    assert wait_until(lambda: manager.snapshot("iso").num_rows == 80)

    held = manager.snapshot("iso")
    baseline = reference_answers(held.engine)
    for batch in range(6):
        manager.append("iso", rows(15, start=80 + batch * 15))
        # The held snapshot must stay bit-identical at its version even
        # as newer versions are published underneath it.
        assert reference_answers(held.engine) == baseline
    assert wait_until(lambda: manager.snapshot("iso").num_rows == 170)
    latest = manager.snapshot("iso")
    assert latest.version > held.version
    assert latest.num_rows == 170 and held.num_rows == 80
    assert reference_answers(held.engine) == baseline


def test_query_never_blocks_on_a_wedged_writer(manager):
    manager.create_tenant("wedge", ATTRIBUTES)
    manager.append("wedge", rows(40))
    assert wait_until(lambda: manager.snapshot("wedge").num_rows == 40)
    tenant = manager._resolve("wedge")
    held_version = tenant.snapshot.version

    release = threading.Event()
    original = tenant._durable.append_rows

    def wedged(batch):
        release.wait(timeout=30.0)
        return original(batch)

    tenant._durable.append_rows = wedged
    writer = threading.Thread(
        target=manager.append, args=("wedge", rows(10, start=40)), daemon=True
    )
    writer.start()
    try:
        # With the writer wedged mid-append, every query must still answer
        # promptly from the published snapshot at the old version.
        started = time.monotonic()
        for _ in range(25):
            value, snapshot = manager.query(
                "wedge", "similarity", first="sector", second="trend"
            )
            assert snapshot.version == held_version
        assert time.monotonic() - started < 10.0
    finally:
        release.set()
        writer.join(timeout=30.0)
    assert not writer.is_alive()
    tenant._durable.append_rows = original
    assert wait_until(lambda: manager.snapshot("wedge").num_rows == 50)
    assert manager.snapshot("wedge").version > held_version


def test_publish_is_an_atomic_swap_with_monotone_versions(manager):
    manager.create_tenant("atomic", ATTRIBUTES)
    manager.append("atomic", rows(30))
    assert wait_until(lambda: manager.snapshot("atomic").num_rows == 30)

    stop = threading.Event()
    failures: list[str] = []

    def reader() -> None:
        last_version = 0
        while not stop.is_set():
            snapshot = manager.snapshot("atomic")
            # A torn publish would show a version/num_rows pair that never
            # existed; versions must also be monotone per observer.
            if snapshot.version < last_version:
                failures.append(
                    f"version went backwards: {last_version} -> {snapshot.version}"
                )
            if snapshot.engine.num_observations != snapshot.num_rows:
                failures.append("snapshot fields disagree with its engine")
            last_version = snapshot.version

    threads = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
    for thread in threads:
        thread.start()
    for batch in range(8):
        manager.append("atomic", rows(10, start=30 + batch * 10))
    assert wait_until(lambda: manager.snapshot("atomic").num_rows == 110)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    assert failures == []
    tenant = manager._resolve("atomic")
    assert tenant.publishes == manager.snapshot("atomic").version


def test_published_reader_engines_never_compile_shards(manager):
    manager.create_tenant("zero", ATTRIBUTES)
    manager.append("zero", rows(50))
    assert wait_until(lambda: manager.snapshot("zero").num_rows == 50)
    engine = manager.snapshot("zero").engine
    reference_answers(engine)  # exercise every query layer
    counters = engine.counters
    assert counters.shard_compiles == 0
    assert counters.full_compiles == 0


# ------------------------------------------------------------------ lifecycle
def test_lru_eviction_checkpoints_and_reopens_with_zero_compiles(tmp_path):
    with TenantManager(tmp_path / "serve", max_tenants=2) as manager:
        manager.create_tenant("t1", ATTRIBUTES)
        manager.append("t1", rows(40))
        assert wait_until(lambda: manager.snapshot("t1").num_rows == 40)
        baseline = manager.similarity("t1", "sector", "volume")
        manager.create_tenant("t2", ATTRIBUTES)
        manager.create_tenant("t3", ATTRIBUTES)  # evicts t1 (the LRU)
        assert manager.resident() == ("t2", "t3")
        assert manager.stats().evictions == 1
        assert set(manager.known_datasets()) == {"t1", "t2", "t3"}
        offline = manager.tenant_stats("t1")
        assert not offline.resident and offline.num_rows == -1

        # Touching t1 re-opens it from its checkpoint, evicting t2.
        snapshot = manager.snapshot("t1")
        assert snapshot.num_rows == 40
        assert manager.resident() == ("t3", "t1")
        assert manager.similarity("t1", "sector", "volume") == baseline
        live = manager._resolve("t1")._durable.engine
        assert live.counters.shard_compiles == 0
        assert live.counters.full_compiles == 0


def test_explicit_evict_roundtrip(manager):
    manager.create_tenant("cold", ATTRIBUTES)
    manager.append("cold", rows(25))
    assert manager.evict("cold") is True
    assert manager.evict("cold") is False
    assert manager.resident() == ()
    # Appends after eviction lazily re-open and keep growing the dataset.
    manager.append("cold", rows(5, start=25))
    assert wait_until(lambda: manager.snapshot("cold").num_rows == 30)


def test_rejected_batch_surfaces_typed_error_and_mutates_nothing(manager):
    manager.create_tenant("strict", ATTRIBUTES)
    manager.append("strict", rows(20))
    assert wait_until(lambda: manager.snapshot("strict").num_rows == 20)
    version = manager.snapshot("strict").version
    with pytest.raises(EngineError):
        manager.append("strict", [["only-two", "values"]])
    assert manager.snapshot("strict").num_rows == 20
    assert manager.snapshot("strict").version == version
    # The tenant stays healthy for good batches afterwards.
    manager.append("strict", rows(5, start=20))
    assert wait_until(lambda: manager.snapshot("strict").num_rows == 25)


def test_unknown_query_operation(manager):
    manager.create_tenant("ops", ATTRIBUTES)
    with pytest.raises(ServeError):
        manager.query("ops", "drop_tables")


# ------------------------------------------------------- admission control
def test_overloaded_queue_sheds_appends_without_enqueueing(tmp_path):
    """With the writer wedged and the queue at ``max_queue_depth``, further
    appends raise :class:`TenantOverloadedError` at the door — nothing is
    enqueued, the shed counter moves, and draining the wedge restores
    service with exactly the admitted batches applied."""
    with TenantManager(tmp_path / "serve", max_queue_depth=2) as manager:
        manager.create_tenant("busy", ATTRIBUTES)
        manager.append("busy", rows(10))
        assert wait_until(lambda: manager.snapshot("busy").num_rows == 10)

        tenant = manager._resolve("busy")
        release = threading.Event()
        entered = threading.Event()
        original = tenant._durable.append_rows

        def wedged(batch):
            entered.set()
            release.wait(timeout=30.0)
            return original(batch)

        tenant._durable.append_rows = wedged
        writers = []

        def spawn(start: int) -> None:
            writer = threading.Thread(
                target=manager.append,
                args=("busy", rows(10, start=start)),
                daemon=True,
            )
            writer.start()
            writers.append(writer)

        try:
            # One batch wedges *inside* the writer thread (confirmed via the
            # event, so it no longer occupies a queue slot); two more then
            # fill the queue to its depth limit.
            spawn(10)
            assert entered.wait(timeout=10.0)
            spawn(20)
            spawn(30)
            assert wait_until(lambda: tenant.queue_depth >= 2)

            before = tenant.queue_depth
            with pytest.raises(TenantOverloadedError):
                manager.append("busy", rows(10, start=40), timeout=5.0)
            assert tenant.queue_depth == before  # nothing was enqueued
            assert manager.stats().appends_shed == 1
        finally:
            release.set()
            for writer in writers:
                writer.join(timeout=30.0)
        tenant._durable.append_rows = original
        # Exactly the three admitted batches landed, never the shed one.
        assert wait_until(lambda: manager.snapshot("busy").num_rows == 40)


def test_queue_depth_validation(tmp_path):
    with pytest.raises(ServeError):
        TenantManager(tmp_path / "serve", max_queue_depth=0)


def test_stats_report_in_flight_and_shed_counters(manager):
    manager.create_tenant("counted", ATTRIBUTES)
    manager.append("counted", rows(10))
    stats = manager.stats()
    assert stats.in_flight_queries == 0
    assert stats.appends_shed == 0
    manager.query("counted", "similarity", first="sector", second="trend")
    assert manager.stats().in_flight_queries == 0  # back to idle after
