"""Request validation and the typed error envelope.

Requests must reject malformed payloads with field-level
:class:`~repro.exceptions.RequestValidationError` messages, and
:func:`~repro.serve.schemas.envelope_for` must map every library
exception to a stable, distinct ``(code, http_status)`` pair — most
specific class first, with an opaque ``internal`` fallback that leaks
nothing but the exception's class name.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConfigurationError,
    EngineError,
    ObservabilityError,
    RequestValidationError,
    ServeError,
    SnapshotVersionError,
    StorageCorruptionError,
    StorageError,
    TenantExistsError,
    TenantNotFoundError,
)
from repro.serve import schemas


# ------------------------------------------------------------------ requests
def test_create_tenant_request_roundtrip():
    request = schemas.CreateTenantRequest.from_dict(
        {"dataset_id": "m1", "attributes": ["a", "b"], "heads": ["a"]}
    )
    assert request.dataset_id == "m1"
    assert request.attributes == ["a", "b"]
    assert request.heads == ["a"]
    assert request.values == []


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ({}, "dataset_id"),
        ({"dataset_id": 7, "attributes": []}, "dataset_id"),
        ({"dataset_id": "m", "attributes": "ab"}, "attributes"),
        ({"dataset_id": "m", "attributes": [1, 2]}, "attributes"),
        ("not-a-mapping", "JSON object"),
    ],
)
def test_create_tenant_request_rejects(payload, fragment):
    with pytest.raises(RequestValidationError, match=fragment):
        schemas.CreateTenantRequest.from_dict(payload)


def test_append_request_accepts_lists_and_mappings():
    request = schemas.AppendRequest.from_dict(
        {"rows": [["x", "y"], {"a": "x"}]}
    )
    assert len(request.rows) == 2


def test_append_request_rejects_scalar_rows():
    with pytest.raises(RequestValidationError, match="each row"):
        schemas.AppendRequest.from_dict({"rows": ["scalar"]})


def test_neighbors_request_rejects_bool_masquerading_as_int():
    # bool subclasses int; a JSON `true` must not pass as a limit.
    with pytest.raises(RequestValidationError, match="limit"):
        schemas.NeighborsRequest.from_dict({"attribute": "a", "limit": True})
    request = schemas.NeighborsRequest.from_dict({"attribute": "a", "limit": 3})
    assert request.limit == 3 and request.min_similarity == 0.0


def test_classify_request_requires_string_evidence_keys():
    with pytest.raises(RequestValidationError, match="evidence"):
        schemas.ClassifyRequest.from_dict({"evidence": {1: "x"}})
    request = schemas.ClassifyRequest.from_dict(
        {"evidence": {"a": "x"}, "targets": ["b"]}
    )
    assert request.evidence == {"a": "x"} and request.targets == ["b"]


def test_dominators_request_defaults():
    request = schemas.DominatorsRequest.from_dict({})
    assert request.algorithm == "set-cover"
    assert request.top_fraction is None and request.target is None


# ------------------------------------------------------------------ envelope
@pytest.mark.parametrize(
    "error, code, status",
    [
        (RequestValidationError("bad"), "bad_request", 400),
        (TenantNotFoundError("gone"), "tenant_not_found", 404),
        (TenantExistsError("dup"), "tenant_exists", 409),
        (ServeError("nope"), "serve_error", 400),
        (SnapshotVersionError("stale"), "snapshot_version", 409),
        (ConfigurationError("cfg"), "bad_request", 400),
        (EngineError("arity"), "invalid_rows", 422),
        (StorageCorruptionError("crc"), "storage_corruption", 500),
        (StorageError("disk"), "storage_error", 503),
        (ObservabilityError("obs"), "engine_error", 500),
    ],
)
def test_envelope_codes_are_distinct_and_specific(error, code, status):
    envelope = schemas.envelope_for(error)
    assert envelope.code == code
    assert envelope.http_status == status
    assert envelope.message == str(error)
    assert envelope.detail == {"type": type(error).__name__}


def test_envelope_wire_shape():
    body = schemas.envelope_for(TenantNotFoundError("no such tenant")).to_dict()
    assert set(body) == {"error"}
    assert set(body["error"]) == {"code", "message", "detail"}


def test_envelope_internal_fallback_hides_details():
    envelope = schemas.envelope_for(ZeroDivisionError("secret / 0"))
    assert envelope.code == "internal"
    assert envelope.http_status == 500
    assert "secret" not in envelope.message
    assert envelope.detail == {"type": "ZeroDivisionError"}
