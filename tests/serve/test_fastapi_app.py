"""FastAPI adapter parity tests (skipped unless fastapi is installed).

The adapter must mirror the stdlib transport exactly: same routes, same
response bodies, same ``{"error": {"code", "message", "detail"}}``
envelope with the same codes — pydantic types the OpenAPI surface, but
validation authority stays with the stdlib schemas.
"""

from __future__ import annotations

import time

import pytest

fastapi = pytest.importorskip("fastapi")
testclient = pytest.importorskip("fastapi.testclient")

from repro.serve import TenantManager  # noqa: E402
from repro.serve.fastapi_app import FASTAPI_AVAILABLE, create_app  # noqa: E402

ATTRIBUTES = ["sector", "trend", "volume"]


def rows(count: int, start: int = 0) -> list[list[str]]:
    return [
        [f"s{(start + i) % 3}", f"t{(start + i) % 4}", f"v{(start + i) % 5}"]
        for i in range(count)
    ]


@pytest.fixture()
def client(tmp_path):
    assert FASTAPI_AVAILABLE
    with TenantManager(tmp_path / "serve") as manager:
        app = create_app(manager)
        # raise_server_exceptions=False routes unhandled errors through the
        # app's exception handlers, like a real server would.
        with testclient.TestClient(app, raise_server_exceptions=False) as c:
            yield c


def wait_for_rows(client, dataset: str, expected: int) -> None:
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        body = client.get(f"/v1/tenants/{dataset}").json()
        if body.get("num_rows") == expected:
            return
        time.sleep(0.01)
    raise AssertionError(f"{dataset} never reached {expected} rows")


def test_lifecycle_parity(client):
    response = client.post(
        "/v1/tenants", json={"dataset_id": "market", "attributes": ATTRIBUTES}
    )
    assert response.status_code == 201
    assert response.json()["dataset_id"] == "market"

    response = client.post("/v1/tenants/market/append", json={"rows": rows(60)})
    assert response.status_code == 200 and response.json()["appended"] == 60
    wait_for_rows(client, "market", 60)

    response = client.post(
        "/v1/tenants/market/query/similarity",
        json={"first": "sector", "second": "trend"},
    )
    assert response.status_code == 200
    body = response.json()
    assert body["num_rows"] == 60 and 0.0 <= body["similarity"] <= 1.0

    for operation, payload in [
        ("neighbors", {"attribute": "sector"}),
        ("clusters", {"t": 2}),
        ("dominators", {}),
        ("classify", {"evidence": {"sector": "s0"}}),
    ]:
        response = client.post(
            f"/v1/tenants/market/query/{operation}", json=payload
        )
        assert response.status_code == 200, (operation, response.json())

    assert client.get("/health").json()["status"] == "ok"
    assert client.get("/stats").json()["resident_tenants"] == 1
    assert client.get("/metrics").status_code == 200

    response = client.delete("/v1/tenants/market")
    assert response.json() == {"dataset_id": "market", "evicted": True}


def test_error_envelope_parity(client):
    response = client.post(
        "/v1/tenants/ghost/query/similarity",
        json={"first": "a", "second": "b"},
    )
    assert response.status_code == 404
    assert response.json()["error"]["code"] == "tenant_not_found"

    client.post("/v1/tenants", json={"dataset_id": "dup", "attributes": ATTRIBUTES})
    response = client.post(
        "/v1/tenants", json={"dataset_id": "dup", "attributes": ATTRIBUTES}
    )
    assert response.status_code == 409
    assert response.json()["error"]["code"] == "tenant_exists"

    response = client.post("/v1/tenants/dup/append", json={"rows": [["one"]]})
    assert response.status_code == 422
    assert response.json()["error"]["code"] == "invalid_rows"

    # Pydantic-level rejection still wears the same envelope shape.
    response = client.post("/v1/tenants/dup/append", json={"rows": "nope"})
    assert response.status_code == 400
    assert response.json()["error"]["code"] == "bad_request"
