"""End-to-end tests of the stdlib JSON transport.

A real :class:`~repro.serve.http.ServeHTTPServer` on an ephemeral port,
exercised with ``http.client`` — the full create / append / query /
evict lifecycle, every query operation, the operational endpoints, and
one test per distinct error-envelope path (malformed body, missing
tenant, duplicate create, invalid rows, corrupted durable state).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import obs
from repro.serve import TenantManager
from repro.serve.http import create_server

ATTRIBUTES = ["sector", "trend", "volume"]


def rows(count: int, start: int = 0) -> list[list[str]]:
    return [
        [f"s{(start + i) % 3}", f"t{(start + i) % 4}", f"v{(start + i) % 5}"]
        for i in range(count)
    ]


class Client:
    """A minimal JSON client over ``http.client``."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    def request(self, method: str, path: str, body=None):
        import http.client

        connection = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            payload = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                return response.status, json.loads(raw)
            return response.status, raw.decode("utf-8")
        finally:
            connection.close()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body=None):
        return self.request("POST", path, body)

    def delete(self, path):
        return self.request("DELETE", path)


@pytest.fixture()
def served(tmp_path):
    registry = obs.enable()
    manager = TenantManager(tmp_path / "serve", max_tenants=4)
    server = create_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield Client(host, port), manager
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
        thread.join(timeout=10)
        obs.disable()
    assert registry is not None


def wait_for_rows(client: Client, dataset: str, expected: int) -> None:
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        status, body = client.get(f"/v1/tenants/{dataset}")
        if status == 200 and body["num_rows"] == expected:
            return
        time.sleep(0.01)
    raise AssertionError(f"{dataset} never reached {expected} rows")


# ------------------------------------------------------------------ lifecycle
def test_full_lifecycle_over_http(served):
    client, _manager = served
    status, body = client.post(
        "/v1/tenants", {"dataset_id": "market", "attributes": ATTRIBUTES}
    )
    assert status == 201 and body["dataset_id"] == "market" and body["resident"]

    status, body = client.post("/v1/tenants/market/append", {"rows": rows(60)})
    assert status == 200 and body["appended"] == 60
    wait_for_rows(client, "market", 60)

    status, body = client.get("/v1/tenants")
    assert status == 200 and body["datasets"] == ["market"]

    status, body = client.post(
        "/v1/tenants/market/query/similarity",
        {"first": "sector", "second": "trend"},
    )
    assert status == 200
    assert body["dataset_id"] == "market" and body["num_rows"] == 60
    assert 0.0 <= body["similarity"] <= 1.0

    status, body = client.post(
        "/v1/tenants/market/query/neighbors", {"attribute": "sector"}
    )
    assert status == 200 and isinstance(body["neighbors"], list)

    status, body = client.post("/v1/tenants/market/query/clusters", {"t": 2})
    assert status == 200 and len(body["centers"]) <= 2 and body["clusters"]

    status, body = client.post(
        "/v1/tenants/market/query/dominators", {"algorithm": "greedy"}
    )
    assert status == 200 and body["algorithm"] == "greedy"
    assert 0.0 <= body["coverage"] <= 1.0

    status, body = client.post(
        "/v1/tenants/market/query/classify", {"evidence": {"sector": "s0"}}
    )
    assert status == 200 and set(body["predictions"]) == {"trend", "volume"}

    status, body = client.delete("/v1/tenants/market")
    assert status == 200 and body == {"dataset_id": "market", "evicted": True}
    status, body = client.get("/v1/tenants/market")
    assert status == 200 and body["resident"] is False
    # Queries after eviction transparently re-open from the checkpoint.
    status, body = client.post(
        "/v1/tenants/market/query/similarity",
        {"first": "sector", "second": "trend"},
    )
    assert status == 200 and body["num_rows"] == 60


def test_operational_endpoints(served):
    client, _manager = served
    client.post("/v1/tenants", {"dataset_id": "ops", "attributes": ATTRIBUTES})
    client.post("/v1/tenants/ops/append", {"rows": rows(10)})
    wait_for_rows(client, "ops", 10)

    status, body = client.get("/health")
    assert status == 200
    assert body["status"] == "ok" and body["resident_tenants"] == 1

    status, body = client.get("/stats")
    assert status == 200
    assert body["tenants"]["ops"]["num_rows"] == 10
    assert body["max_tenants"] == 4

    status, text = client.get("/metrics")
    assert status == 200 and isinstance(text, str)
    assert "serve_publish" in text and "serve_tenants" in text


# ------------------------------------------------------------------ envelopes
def test_error_envelopes_over_http(served):
    client, manager = served

    status, body = client.post("/v1/tenants", {"attributes": ATTRIBUTES})
    assert (status, body["error"]["code"]) == (400, "bad_request")
    assert "dataset_id" in body["error"]["message"]

    status, body = client.post(
        "/v1/tenants/ghost/query/similarity", {"first": "a", "second": "b"}
    )
    assert (status, body["error"]["code"]) == (404, "tenant_not_found")

    client.post("/v1/tenants", {"dataset_id": "dup", "attributes": ATTRIBUTES})
    status, body = client.post(
        "/v1/tenants", {"dataset_id": "dup", "attributes": ATTRIBUTES}
    )
    assert (status, body["error"]["code"]) == (409, "tenant_exists")

    status, body = client.post("/v1/tenants/dup/append", {"rows": [["one"]]})
    assert (status, body["error"]["code"]) == (422, "invalid_rows")

    status, body = client.post(
        "/v1/tenants/dup/query/dominators", {"algorithm": "magic"}
    )
    assert (status, body["error"]["code"]) == (400, "bad_request")

    status, body = client.post("/v1/tenants/dup/query/teleport", {})
    assert (status, body["error"]["code"]) == (400, "bad_request")

    status, body = client.post("/nowhere", {})
    assert (status, body["error"]["code"]) == (400, "bad_request")

    connection_body = b"{not json"
    import http.client

    connection = http.client.HTTPConnection(client.host, client.port, timeout=30)
    connection.request(
        "POST",
        "/v1/tenants/dup/append",
        body=connection_body,
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    body = json.loads(response.read())
    connection.close()
    assert (response.status, body["error"]["code"]) == (400, "bad_request")


def test_corrupted_tenant_maps_to_storage_corruption(served):
    client, manager = served
    client.post("/v1/tenants", {"dataset_id": "bad", "attributes": ATTRIBUTES})
    client.post("/v1/tenants/bad/append", {"rows": rows(10)})
    wait_for_rows(client, "bad", 10)
    client.delete("/v1/tenants/bad")  # checkpoint + close

    manifest = manager.root / "bad" / "MANIFEST.json"
    manifest.write_text("{ this is not a manifest")

    status, body = client.post(
        "/v1/tenants/bad/query/similarity", {"first": "sector", "second": "trend"}
    )
    assert status == 500
    assert body["error"]["code"] == "storage_corruption"
    assert body["error"]["detail"] == {"type": "StorageCorruptionError"}


def test_overload_maps_to_503_with_typed_envelope(tmp_path):
    """A full append queue answers 503 ``overloaded`` at the transport, and
    ``/stats`` exposes the shed counter and the in-flight gauge."""
    registry = obs.enable()
    manager = TenantManager(tmp_path / "serve", max_queue_depth=1)
    server = create_server(manager, port=0)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    host, port = server.server_address[:2]
    client = Client(host, port)
    try:
        client.post("/v1/tenants", {"dataset_id": "jam", "attributes": ATTRIBUTES})
        client.post("/v1/tenants/jam/append", {"rows": rows(10)})
        wait_for_rows(client, "jam", 10)

        tenant = manager._resolve("jam")
        release = threading.Event()
        entered = threading.Event()
        original = tenant._durable.append_rows

        def wedged(batch):
            entered.set()
            release.wait(timeout=30.0)
            return original(batch)

        tenant._durable.append_rows = wedged
        writers = [
            threading.Thread(
                target=client.post,
                args=("/v1/tenants/jam/append", {"rows": rows(10, start=10 * b)}),
                daemon=True,
            )
            for b in (1, 2)
        ]
        # The first batch wedges inside the writer (confirmed via the
        # event, freeing its queue slot); the second fills the queue.
        writers[0].start()
        assert entered.wait(timeout=10.0)
        writers[1].start()
        deadline = time.monotonic() + 10
        while tenant.queue_depth < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tenant.queue_depth >= 1

        status, body = client.post(
            "/v1/tenants/jam/append", {"rows": rows(10, start=30)}
        )
        assert status == 503
        assert body["error"]["code"] == "overloaded"
        assert body["error"]["detail"] == {"type": "TenantOverloadedError"}

        release.set()
        for writer in writers:
            writer.join(timeout=30.0)
        tenant._durable.append_rows = original

        status, stats = client.get("/stats")
        assert status == 200
        assert stats["appends_shed"] >= 1
        assert stats["in_flight_queries"] == 0
    finally:
        release.set()
        server.shutdown()
        server.server_close()
        manager.close()
        server_thread.join(timeout=10)
        obs.disable()
    assert registry is not None
