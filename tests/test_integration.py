"""End-to-end integration tests exercising the full pipeline through the public API."""

from __future__ import annotations

import pytest

import repro
from repro import (
    AssociationBasedClassifier,
    CONFIG_C1,
    MarketConfig,
    SyntheticMarket,
    build_association_hypergraph,
    build_similarity_graph,
    classification_confidence,
    cluster_attributes,
    discretize_panel,
    dominator_set_cover,
    is_dominator,
    threshold_by_top_fraction,
)
from repro.data.market import SectorSpec


@pytest.fixture(scope="module")
def pipeline():
    """Run the whole pipeline once: market -> discretize -> hypergraph -> dominators."""
    sectors = [
        SectorSpec("Energy", 5, 2, producer_fraction=0.4),
        SectorSpec("Technology", 5, 2, producer_fraction=0.2),
        SectorSpec("Financial", 4, 2, producer_fraction=0.25),
    ]
    panel = SyntheticMarket(MarketConfig(num_days=200, sectors=sectors, seed=21)).generate()
    split = int(panel.num_days * 0.8)
    train = panel.slice_days(0, split)
    test = panel.slice_days(split - 1, None)
    train_db = discretize_panel(train, k=CONFIG_C1.k)
    test_db = discretize_panel(test, k=CONFIG_C1.k)
    hypergraph = build_association_hypergraph(train_db, CONFIG_C1)
    return panel, train_db, test_db, hypergraph


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestFullPipeline:
    def test_hypergraph_covers_all_series(self, pipeline):
        panel, _train_db, _test_db, hypergraph = pipeline
        assert hypergraph.vertices == frozenset(panel.names)
        assert hypergraph.num_edges > 0

    def test_similarity_clustering_groups_sectors(self, pipeline):
        panel, _train_db, _test_db, hypergraph = pipeline
        graph = build_similarity_graph(hypergraph)
        clustering = cluster_attributes(graph, t=3)
        purity = clustering.sector_purity(panel.sector_map())
        # Sector co-movement should make clusters noticeably purer than the
        # 1/3 one would get from arbitrary grouping into three sectors.
        assert purity > 0.45

    def test_dominators_are_small_and_cover(self, pipeline):
        _panel, _train_db, _test_db, hypergraph = pipeline
        pruned = threshold_by_top_fraction(hypergraph, 0.4)
        result = dominator_set_cover(pruned)
        assert result.size <= hypergraph.num_vertices // 2
        assert result.coverage >= 0.9
        assert is_dominator(pruned, result.dominators, target=result.covered & result.target)

    def test_classifier_beats_chance_out_of_sample(self, pipeline):
        _panel, train_db, test_db, hypergraph = pipeline
        pruned = threshold_by_top_fraction(hypergraph, 0.4)
        dominators = list(dominator_set_cover(pruned).dominators)
        targets = [a for a in train_db.attributes if a not in set(dominators)]
        classifier = AssociationBasedClassifier(hypergraph)
        out_conf = classification_confidence(classifier.evaluate(test_db, dominators, targets))
        in_conf = classification_confidence(classifier.evaluate(train_db, dominators, targets))
        assert in_conf > 1.0 / CONFIG_C1.k
        assert out_conf > 1.0 / CONFIG_C1.k * 0.85

    def test_producers_have_high_out_degree(self, pipeline):
        """Producer-style series should rank above average in weighted out-degree."""
        from repro.hypergraph import weighted_out_degrees

        panel, _train_db, _test_db, hypergraph = pipeline
        degrees = weighted_out_degrees(hypergraph)
        mean_degree = sum(degrees.values()) / len(degrees)
        producer_names = [n for n in panel.names if n.startswith("EN0")]
        producer_mean = sum(degrees[n] for n in producer_names) / len(producer_names)
        assert producer_mean > 0.5 * mean_degree
