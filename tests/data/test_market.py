"""Unit tests for the synthetic market generator."""

from __future__ import annotations

import pytest

from repro.data.market import MarketConfig, SectorSpec, SyntheticMarket, default_sectors
from repro.exceptions import ConfigurationError


class TestSectorSpec:
    def test_valid(self):
        spec = SectorSpec("Energy", 5, 2, producer_fraction=0.4)
        assert spec.num_series == 5

    def test_needs_series(self):
        with pytest.raises(ConfigurationError):
            SectorSpec("Energy", 0)

    def test_needs_sub_sectors(self):
        with pytest.raises(ConfigurationError):
            SectorSpec("Energy", 3, 0)

    def test_producer_fraction_range(self):
        with pytest.raises(ConfigurationError):
            SectorSpec("Energy", 3, producer_fraction=1.5)


class TestMarketConfig:
    def test_defaults_valid(self):
        assert MarketConfig().num_days == 750

    def test_needs_days(self):
        with pytest.raises(ConfigurationError):
            MarketConfig(num_days=2)

    def test_needs_sectors(self):
        with pytest.raises(ConfigurationError):
            MarketConfig(sectors=[])

    def test_negative_volatility_rejected(self):
        with pytest.raises(ConfigurationError):
            MarketConfig(market_volatility=-0.1)


class TestDefaultSectors:
    def test_covers_twelve_sectors(self):
        assert len(default_sectors()) == 12

    def test_scaling_reduces_counts(self):
        full = sum(s.num_series for s in default_sectors())
        half = sum(s.num_series for s in default_sectors(0.5))
        assert half < full
        assert all(s.num_series >= 1 for s in default_sectors(0.1))


class TestSyntheticMarket:
    def small_config(self, seed=3):
        sectors = [
            SectorSpec("Energy", 4, 2, producer_fraction=0.5),
            SectorSpec("Technology", 4, 2, producer_fraction=0.25),
        ]
        return MarketConfig(num_days=60, sectors=sectors, seed=seed)

    def test_panel_shape(self):
        panel = SyntheticMarket(self.small_config()).generate()
        assert len(panel) == 8
        assert panel.num_days == 60

    def test_deterministic_for_seed(self):
        a = SyntheticMarket(self.small_config(seed=9)).generate()
        b = SyntheticMarket(self.small_config(seed=9)).generate()
        assert a.get(a.names[0]).prices == b.get(b.names[0]).prices

    def test_different_seeds_differ(self):
        a = SyntheticMarket(self.small_config(seed=1)).generate()
        b = SyntheticMarket(self.small_config(seed=2)).generate()
        assert a.get(a.names[0]).prices != b.get(b.names[0]).prices

    def test_prices_positive(self):
        panel = SyntheticMarket(self.small_config()).generate()
        assert all(p > 0 for series in panel for p in series.prices)

    def test_sector_labels_propagated(self):
        panel = SyntheticMarket(self.small_config()).generate()
        assert set(panel.sectors()) == {"Energy", "Technology"}

    def test_unique_tickers_default_universe(self):
        panel = SyntheticMarket(MarketConfig(num_days=10)).generate()
        assert len(set(panel.names)) == len(panel.names)

    def test_producer_names_subset_of_panel(self):
        market = SyntheticMarket(self.small_config())
        panel = market.generate()
        producers = market.producer_names()
        assert producers
        assert set(producers) <= set(panel.names)

    def test_sector_comovement_exceeds_cross_sector(self):
        """Series within a sector should correlate more than across sectors."""
        import numpy as np

        panel = SyntheticMarket(self.small_config()).generate()
        deltas = panel.delta_columns()
        energy = sorted(panel.sectors()["Energy"])
        tech = sorted(panel.sectors()["Technology"])
        within = np.corrcoef(deltas[energy[2]], deltas[energy[3]])[0, 1]
        across = np.corrcoef(deltas[energy[2]], deltas[tech[2]])[0, 1]
        assert within > across

    def test_lead_lag_present_for_producers(self):
        """A producer's lagged returns should correlate with some consumer's returns."""
        import numpy as np

        config = self.small_config()
        market = SyntheticMarket(config)
        panel = market.generate()
        deltas = panel.delta_columns()
        producers = market.producer_names()
        consumers = [n for n in panel.names if n not in set(producers)]
        best = 0.0
        for producer in producers:
            lagged = deltas[producer][:-1]
            for consumer in consumers:
                current = deltas[consumer][1:]
                best = max(best, abs(np.corrcoef(lagged, current)[0, 1]))
        assert best > 0.3
