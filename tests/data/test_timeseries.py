"""Unit tests for price series, panels, and the delta transform."""

from __future__ import annotations

import pytest

from repro.data.timeseries import PricePanel, PriceSeries, delta_series
from repro.exceptions import SchemaError


class TestDeltaSeries:
    def test_values(self):
        assert delta_series([100.0, 110.0, 99.0]) == pytest.approx([0.1, -0.1])

    def test_length(self):
        assert len(delta_series([1.0, 2.0, 3.0, 4.0])) == 3

    def test_needs_two_prices(self):
        with pytest.raises(SchemaError):
            delta_series([100.0])

    def test_rejects_non_positive_price(self):
        with pytest.raises(SchemaError):
            delta_series([0.0, 1.0])


class TestPriceSeries:
    def test_basic(self):
        series = PriceSeries("AAA", (10.0, 11.0, 12.1), sector="Tech")
        assert len(series) == 3
        assert series.sector == "Tech"
        assert series.deltas() == pytest.approx([0.1, 0.1])

    def test_prices_coerced_to_float(self):
        series = PriceSeries("AAA", (10, 20))
        assert series.prices == (10.0, 20.0)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            PriceSeries("", (1.0, 2.0))

    def test_too_few_prices_rejected(self):
        with pytest.raises(SchemaError):
            PriceSeries("AAA", (1.0,))

    def test_non_positive_price_rejected(self):
        with pytest.raises(SchemaError):
            PriceSeries("AAA", (1.0, -2.0))


def make_panel():
    return PricePanel(
        [
            PriceSeries("AAA", (10.0, 11.0, 12.0, 13.0), sector="Tech", sub_sector="Tech/1"),
            PriceSeries("BBB", (20.0, 19.0, 21.0, 22.0), sector="Tech", sub_sector="Tech/2"),
            PriceSeries("CCC", (5.0, 5.5, 5.0, 6.0), sector="Energy", sub_sector="Energy/1"),
        ]
    )


class TestPricePanel:
    def test_names_and_days(self):
        panel = make_panel()
        assert panel.names == ["AAA", "BBB", "CCC"]
        assert panel.num_days == 4
        assert len(panel) == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            PricePanel([PriceSeries("A", (1.0, 2.0)), PriceSeries("A", (1.0, 2.0))])

    def test_misaligned_lengths_rejected(self):
        with pytest.raises(SchemaError):
            PricePanel([PriceSeries("A", (1.0, 2.0)), PriceSeries("B", (1.0, 2.0, 3.0))])

    def test_get(self):
        assert make_panel().get("BBB").sector == "Tech"
        with pytest.raises(SchemaError):
            make_panel().get("ZZZ")

    def test_sectors(self):
        sectors = make_panel().sectors()
        assert sectors["Tech"] == ["AAA", "BBB"]
        assert sectors["Energy"] == ["CCC"]

    def test_sub_sectors(self):
        assert len(make_panel().sub_sectors()) == 3

    def test_sector_of(self):
        assert make_panel().sector_of("CCC") == "Energy"

    def test_slice_days(self):
        sliced = make_panel().slice_days(0, 2)
        assert sliced.num_days == 2
        assert sliced.get("AAA").prices == (10.0, 11.0)

    def test_slice_days_too_short_rejected(self):
        with pytest.raises(SchemaError):
            make_panel().slice_days(3, 4)

    def test_restrict(self):
        restricted = make_panel().restrict(["CCC", "AAA"])
        assert restricted.names == ["AAA", "CCC"]

    def test_restrict_unknown_rejected(self):
        with pytest.raises(SchemaError):
            make_panel().restrict(["AAA", "ZZZ"])

    def test_delta_columns(self):
        deltas = make_panel().delta_columns()
        assert set(deltas) == {"AAA", "BBB", "CCC"}
        assert len(deltas["AAA"]) == 3

    def test_to_raw_database(self):
        db = make_panel().to_raw_database()
        assert db.num_attributes == 3
        assert db.num_observations == 3

    def test_sector_map(self):
        assert make_panel().sector_map() == {"AAA": "Tech", "BBB": "Tech", "CCC": "Energy"}
