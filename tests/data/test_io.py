"""Round-trip tests for database and panel CSV persistence."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.io import (
    read_database_csv,
    read_panel_csv,
    write_database_csv,
    write_panel_csv,
)
from repro.data.timeseries import PricePanel, PriceSeries
from repro.exceptions import SchemaError


class TestDatabaseCsv:
    def test_round_trip(self, tmp_path):
        db = Database(["A", "B"], [[1, "x"], [2, "y"], [3, "x"]])
        path = tmp_path / "db.csv"
        write_database_csv(db, path)
        loaded = read_database_csv(path)
        assert loaded.attributes == ("A", "B")
        assert loaded.to_rows() == [[1, "x"], [2, "y"], [3, "x"]]

    def test_floats_survive(self, tmp_path):
        db = Database(["X"], [[0.5], [1.25]])
        path = tmp_path / "db.csv"
        write_database_csv(db, path)
        assert read_database_csv(path).column("X") == (0.5, 1.25)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_database_csv(path)


class TestPanelCsv:
    def make_panel(self):
        return PricePanel(
            [
                PriceSeries("AAA", (10.0, 11.0, 12.0), sector="Tech", sub_sector="Tech/1"),
                PriceSeries("BBB", (20.0, 21.0, 19.5), sector="Energy", sub_sector="Energy/1"),
            ]
        )

    def test_round_trip(self, tmp_path):
        panel = self.make_panel()
        path = tmp_path / "panel.csv"
        write_panel_csv(panel, path)
        loaded = read_panel_csv(path)
        assert loaded.names == ["AAA", "BBB"]
        assert loaded.get("AAA").prices == (10.0, 11.0, 12.0)
        assert loaded.get("BBB").sector == "Energy"
        assert loaded.get("BBB").sub_sector == "Energy/1"

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "panel.csv"
        path.write_text("AAA\nTech\nTech/1\n10.0\n")
        with pytest.raises(SchemaError):
            read_panel_csv(path)
