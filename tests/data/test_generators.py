"""Tests for the synthetic non-financial database generators."""

from __future__ import annotations

import pytest

from repro.data.generators import (
    BasketRule,
    GenePathwaySpec,
    gene_expression_database,
    market_basket_database,
    personal_interest_database,
)
from repro.exceptions import ConfigurationError
from repro.rules.measures import confidence


class TestBasketRule:
    def test_valid(self):
        rule = BasketRule(("milk",), "beer", probability=0.5)
        assert rule.consequent == "beer"

    def test_empty_antecedent_rejected(self):
        with pytest.raises(ConfigurationError):
            BasketRule((), "beer")

    def test_consequent_in_antecedent_rejected(self):
        with pytest.raises(ConfigurationError):
            BasketRule(("beer",), "beer")

    def test_probability_range(self):
        with pytest.raises(ConfigurationError):
            BasketRule(("milk",), "beer", probability=1.5)


class TestMarketBasketDatabase:
    def test_shape_and_domain(self):
        db = market_basket_database(num_transactions=200, seed=1)
        assert db.num_observations == 200
        assert db.values == frozenset({0, 1})

    def test_deterministic_for_seed(self):
        a = market_basket_database(num_transactions=100, seed=5)
        b = market_basket_database(num_transactions=100, seed=5)
        assert a.to_rows() == b.to_rows()

    def test_planted_rule_has_high_confidence(self):
        db = market_basket_database(num_transactions=800, seed=2)
        planted = confidence(db, {"milk": 1, "diapers": 1}, {"beer": 1})
        background = db.support({"beer": 1})
        assert planted > background + 0.2

    def test_unknown_rule_items_rejected(self):
        with pytest.raises(ConfigurationError):
            market_basket_database(rules=(BasketRule(("caviar",), "beer"),))

    def test_invalid_transaction_count(self):
        with pytest.raises(ConfigurationError):
            market_basket_database(num_transactions=0)


class TestGeneExpressionDatabase:
    def test_shape(self):
        data = gene_expression_database(GenePathwaySpec(num_patients=150), seed=4)
        assert data.database.num_observations == 150
        assert data.disease_attribute in data.database.attributes
        assert len(data.gene_names) == 12

    def test_value_domain(self):
        data = gene_expression_database(seed=4)
        gene_values = set()
        for gene in data.gene_names:
            gene_values |= set(data.database.column(gene))
        assert gene_values <= {"under", "normal", "over"}
        assert set(data.database.column("Disease")) <= {"present", "absent"}

    def test_pathway_labels_cover_all_genes(self):
        data = gene_expression_database(seed=4)
        assert set(data.pathway_of) == set(data.gene_names)

    def test_disease_linked_to_configured_pathways(self):
        data = gene_expression_database(GenePathwaySpec(num_patients=400), seed=6)
        db = data.database
        linked = confidence(db, {"G0_0": "over", "G1_0": "over"}, {"Disease": "present"})
        unlinked = confidence(db, {"G2_0": "over"}, {"Disease": "present"})
        assert linked > unlinked

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            GenePathwaySpec(num_pathways=0)
        with pytest.raises(ConfigurationError):
            GenePathwaySpec(disease_pathways=(7,))


class TestPersonalInterestDatabase:
    def test_shape_and_domain(self):
        db, personas = personal_interest_database(num_people=120, seed=3)
        assert db.num_observations == 120
        assert len(personas) == 120
        assert db.values <= frozenset({"l", "m", "h"})

    def test_personas_balanced(self):
        _db, personas = personal_interest_database(num_people=300, seed=3)
        counts = {p: personas.count(p) for p in set(personas)}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_paper_style_rule_present(self):
        db, _personas = personal_interest_database(num_people=600, seed=8)
        # The reader_player persona reproduces the paper's example rule:
        # high read and high play imply low music far above its base rate.
        rule_support = db.support({"read": "h", "play": "h"})
        linked = confidence(db, {"read": "h", "play": "h"}, {"music": "l"})
        background = db.support({"music": "l"})
        assert rule_support > 0.05
        assert linked > background + 0.2

    def test_invalid_people_count(self):
        with pytest.raises(ConfigurationError):
            personal_interest_database(num_people=0)

    def test_mismatched_persona_interests_rejected(self):
        with pytest.raises(ConfigurationError):
            personal_interest_database(
                personas={"a": {"read": 5}, "b": {"play": 5}}, num_people=10
            )
