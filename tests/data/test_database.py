"""Unit tests for the multi-valued-attribute database ``D(A, O, V)``."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.exceptions import SchemaError


def make_db():
    return Database(["A", "B", "C"], [[1, 2, 3], [1, 2, 4], [2, 2, 3], [2, 1, 4]])


class TestConstruction:
    def test_basic_shape(self):
        db = make_db()
        assert db.num_attributes == 3
        assert db.num_observations == 4
        assert db.attributes == ("A", "B", "C")
        assert len(db) == 4

    def test_value_domain_inferred(self):
        db = make_db()
        assert db.values == frozenset({1, 2, 3, 4})

    def test_explicit_value_domain_enforced(self):
        with pytest.raises(SchemaError):
            Database(["A"], [[1], [9]], values=[1, 2, 3])

    def test_rows_as_mappings(self):
        db = Database(["A", "B"], [{"A": 1, "B": 2}, {"B": 4, "A": 3}])
        assert db.to_rows() == [[1, 2], [3, 4]]

    def test_missing_mapping_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Database(["A", "B"], [{"A": 1}])

    def test_wrong_row_length_rejected(self):
        with pytest.raises(SchemaError):
            Database(["A", "B"], [[1]])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Database(["A", "A"], [[1, 2]])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            Database([], [])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Database([""], [[1]])

    def test_from_columns(self):
        db = Database.from_columns({"X": [1, 2], "Y": [3, 4]})
        assert db.to_rows() == [[1, 3], [2, 4]]

    def test_from_columns_inconsistent_lengths(self):
        with pytest.raises(SchemaError):
            Database.from_columns({"X": [1, 2], "Y": [3]})


class TestAccess:
    def test_column(self):
        assert make_db().column("B") == (2, 2, 2, 1)

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            make_db().column("Z")

    def test_row(self):
        assert make_db().row(2) == {"A": 2, "B": 2, "C": 3}

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make_db().row(10)

    def test_rows_iterates_all(self):
        assert len(list(make_db().rows())) == 4

    def test_attribute_values(self):
        assert make_db().attribute_values("C") == frozenset({3, 4})

    def test_contains(self):
        db = make_db()
        assert "A" in db
        assert "Z" not in db

    def test_equality(self):
        assert make_db() == make_db()
        assert make_db() != Database(["A"], [[1]])


class TestAlgebra:
    def test_project(self):
        projected = make_db().project(["C", "A"])
        assert projected.attributes == ("C", "A")
        assert projected.to_rows() == [[3, 1], [4, 1], [3, 2], [4, 2]]

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaError):
            make_db().project(["A", "Z"])

    def test_select(self):
        selected = make_db().select({"A": 1})
        assert selected.num_observations == 2
        assert all(row["A"] == 1 for row in selected.rows())

    def test_select_empty_result(self):
        assert make_db().select({"A": 99}).num_observations == 0

    def test_slice_rows(self):
        sliced = make_db().slice_rows(1, 3)
        assert sliced.to_rows() == [[1, 2, 4], [2, 2, 3]]

    def test_extend_rows(self):
        combined = make_db().extend_rows(make_db())
        assert combined.num_observations == 8

    def test_extend_rows_mismatched_attributes(self):
        with pytest.raises(SchemaError):
            make_db().extend_rows(Database(["X"], [[1]]))


class TestSupport:
    def test_support_count_single(self):
        assert make_db().support_count({"A": 1}) == 2

    def test_support_count_conjunction(self):
        assert make_db().support_count({"A": 1, "C": 3}) == 1

    def test_support_count_empty_assignment_matches_all(self):
        assert make_db().support_count({}) == 4

    def test_support_fraction(self):
        assert make_db().support({"B": 2}) == pytest.approx(0.75)

    def test_support_missing_value(self):
        assert make_db().support({"A": 42}) == 0.0

    def test_matching_indices(self):
        assert make_db().matching_indices({"C": 4}) == frozenset({1, 3})

    def test_paper_patient_example(self, patient_db):
        # Section 3.1: Supp({(A,3),(C,12)}) = 3/8, Conf(... => (B,13)) = 2/3.
        assert patient_db.support({"A": 3, "C": 12}) == pytest.approx(0.375)
        joint = patient_db.support({"A": 3, "C": 12, "B": 13})
        assert joint / patient_db.support({"A": 3, "C": 12}) == pytest.approx(2 / 3)
