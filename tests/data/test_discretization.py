"""Unit and property tests for the discretizers of Section 5.1.1 and Chapter 3."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.discretization import (
    EqualWidthDiscretizer,
    EquiDepthDiscretizer,
    FloorDiscretizer,
    IntervalDiscretizer,
    MappingDiscretizer,
    discretize_columns,
    k_threshold_vector,
)
from repro.exceptions import DiscretizationError


class TestKThresholdVector:
    def test_length(self):
        assert len(k_threshold_vector([1, 2, 3, 4, 5, 6], k=3)) == 2

    def test_values_come_from_series(self):
        series = [5.0, 1.0, 3.0, 2.0, 4.0]
        thresholds = k_threshold_vector(series, k=2)
        assert all(t in series for t in thresholds)

    def test_sorted_thresholds(self):
        thresholds = k_threshold_vector(list(range(100)), k=5)
        assert thresholds == sorted(thresholds)

    def test_rejects_k_below_two(self):
        with pytest.raises(DiscretizationError):
            k_threshold_vector([1.0, 2.0], k=1)

    def test_rejects_empty_series(self):
        with pytest.raises(DiscretizationError):
            k_threshold_vector([], k=3)

    @given(
        values=st.lists(st.floats(-1, 1, allow_nan=False), min_size=5, max_size=200),
        k=st.integers(2, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_thresholds_are_nondecreasing(self, values, k):
        thresholds = k_threshold_vector(values, k)
        assert all(a <= b for a, b in zip(thresholds, thresholds[1:]))


class TestEquiDepthDiscretizer:
    def test_outputs_full_range(self):
        series = [float(i) for i in range(90)]
        codes = EquiDepthDiscretizer(k=3).fit_transform(series)
        assert set(codes) == {1, 2, 3}

    def test_roughly_equal_bucket_sizes(self):
        series = [float(i) for i in range(300)]
        codes = EquiDepthDiscretizer(k=3).fit_transform(series)
        counts = {c: codes.count(c) for c in set(codes)}
        assert max(counts.values()) - min(counts.values()) <= 3

    def test_monotone_mapping(self):
        discretizer = EquiDepthDiscretizer(k=4).fit([float(i) for i in range(40)])
        assert discretizer.transform_value(-100.0) == 1
        assert discretizer.transform_value(100.0) == 4
        assert discretizer.transform_value(5.0) <= discretizer.transform_value(30.0)

    def test_use_before_fit_rejected(self):
        with pytest.raises(DiscretizationError):
            EquiDepthDiscretizer(k=3).transform_value(0.5)

    def test_invalid_k(self):
        with pytest.raises(DiscretizationError):
            EquiDepthDiscretizer(k=1)

    def test_value_domain(self):
        assert EquiDepthDiscretizer(k=3).value_domain == [1, 2, 3]

    @given(
        values=st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=6,
            max_size=120,
        ),
        k=st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_codes_always_in_domain(self, values, k):
        codes = EquiDepthDiscretizer(k=k).fit_transform(values)
        assert set(codes) <= set(range(1, k + 1))

    @given(
        values=st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=6,
            max_size=120,
        ),
        k=st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_order_preserving(self, values, k):
        discretizer = EquiDepthDiscretizer(k=k).fit(values)
        ordered = sorted(values)
        codes = discretizer.transform(ordered)
        assert codes == sorted(codes)


class TestEqualWidthDiscretizer:
    def test_basic(self):
        codes = EqualWidthDiscretizer(k=2).fit_transform([0.0, 1.0, 9.0, 10.0])
        assert codes == [1, 1, 2, 2]

    def test_constant_series_collapses_to_one(self):
        codes = EqualWidthDiscretizer(k=3).fit_transform([5.0, 5.0, 5.0])
        assert set(codes) == {1}

    def test_clamping_outside_fit_range(self):
        discretizer = EqualWidthDiscretizer(k=4).fit([0.0, 1.0])
        assert discretizer.transform_value(-10.0) == 1
        assert discretizer.transform_value(10.0) == 4

    def test_use_before_fit_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer(k=3).transform_value(1.0)

    def test_fit_empty_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer(k=3).fit([])


class TestSimpleDiscretizers:
    def test_floor_discretizer_matches_table_3_2(self):
        discretizer = FloorDiscretizer(divisor=10)
        assert discretizer.transform([25, 105, 135, 75]) == [2, 10, 13, 7]

    def test_floor_rejects_non_positive_divisor(self):
        with pytest.raises(DiscretizationError):
            FloorDiscretizer(divisor=0)

    def test_interval_discretizer(self):
        discretizer = IntervalDiscretizer({"low": (0, 3), "high": (4, 10)})
        assert discretizer.transform([1, 5]) == ["low", "high"]

    def test_interval_discretizer_unmatched_value(self):
        discretizer = IntervalDiscretizer({"low": (0, 3)})
        with pytest.raises(DiscretizationError):
            discretizer.transform_value(99)

    def test_mapping_discretizer_strict(self):
        discretizer = MappingDiscretizer({"a": 1})
        assert discretizer.transform_value("a") == 1
        with pytest.raises(DiscretizationError):
            discretizer.transform_value("b")

    def test_mapping_discretizer_default(self):
        discretizer = MappingDiscretizer({"a": 1}, default=0, strict=False)
        assert discretizer.transform_value("b") == 0


class TestDiscretizeColumns:
    def test_builds_database_with_expected_domain(self):
        db = discretize_columns({"X": [0.1, 0.2, 0.3, 0.4], "Y": [4.0, 3.0, 2.0, 1.0]}, k=2)
        assert db.attributes == ("X", "Y")
        assert db.values <= frozenset({1, 2})

    def test_columns_discretized_independently(self):
        db = discretize_columns({"X": [0.0, 1.0, 2.0], "Y": [100.0, 200.0, 300.0]}, k=3)
        # Both columns span the full 1..3 range despite different scales.
        assert set(db.column("X")) == set(db.column("Y")) == {1, 2, 3}
