"""Tests reproducing the worked examples of Chapter 3 (Tables 3.1-3.6)."""

from __future__ import annotations

import pytest

from repro.data.examples import (
    NEUTRAL,
    OVER,
    UNDER,
    gene_database,
    patient_database,
    personal_interest_database,
)
from repro.rules.measures import confidence


class TestPatientDatabase:
    def test_shape(self):
        db = patient_database()
        assert db.num_observations == 8
        assert db.attributes == ("A", "C", "B", "H")

    def test_discretization_matches_table_3_2(self, patient_db):
        assert patient_db.column("A") == (2, 6, 3, 1, 3, 3, 4, 8)
        assert patient_db.column("B") == (13, 16, 13, 10, 13, 11, 14, 15)

    def test_example_rule_support_and_confidence(self, patient_db):
        # "{(A,3),(C,12)} => {(B,13)}" has support 0.375 and confidence 2/3.
        assert patient_db.support({"A": 3, "C": 12}) == pytest.approx(0.375)
        assert confidence(patient_db, {"A": 3, "C": 12}, {"B": 13}) == pytest.approx(2 / 3)


class TestGeneDatabase:
    def test_shape(self):
        assert gene_database().num_observations == 8

    def test_discretization_matches_table_3_4(self, gene_db):
        assert gene_db.column("G2") == (UNDER,) * 8
        assert gene_db.column("G1")[0] == UNDER
        assert gene_db.column("G1")[7] == OVER
        assert gene_db.column("G4")[0] == NEUTRAL

    def test_example_rule_support_and_confidence(self, gene_db):
        # "{(G2,down),(G3,down)} => {(G4,up)}" has support 7/8 and confidence 6/7.
        assert gene_db.support({"G2": UNDER, "G3": UNDER}) == pytest.approx(7 / 8)
        assert confidence(
            gene_db, {"G2": UNDER, "G3": UNDER}, {"G4": OVER}
        ) == pytest.approx(6 / 7)


class TestPersonalInterestDatabase:
    def test_shape(self):
        assert personal_interest_database().num_observations == 8

    def test_discretization_matches_table_3_6(self, interest_db):
        assert interest_db.column("R") == ("h", "m", "l", "m", "h", "h", "m", "h")
        assert interest_db.column("M") == ("l", "m", "h", "h", "l", "m", "m", "l")

    def test_example_rule_support_and_confidence(self, interest_db):
        # "{(R,h),(P,h)} => {(M,l)}" has support 0.5 and confidence 0.75.
        assert interest_db.support({"R": "h", "P": "h"}) == pytest.approx(0.5)
        assert confidence(interest_db, {"R": "h", "P": "h"}, {"M": "l"}) == pytest.approx(0.75)


class TestDomains:
    def test_gene_value_domain(self, gene_db):
        assert gene_db.values == frozenset({UNDER, NEUTRAL, OVER})

    def test_interest_value_domain(self, interest_db):
        assert interest_db.values == frozenset({"l", "m", "h"})

    def test_raw_databases_have_floats(self):
        assert all(isinstance(v, float) for v in gene_database().column("G1"))
