"""Tests for the generalized (tail size > 2) association-hypergraph extension."""

from __future__ import annotations

import pytest

from repro.core.acv import acv
from repro.core.config import CONFIG_C1
from repro.core.extensions import (
    GeneralizedAssociationHypergraphBuilder,
    GeneralizedBuildConfig,
    generalized_acv,
)
from repro.data.database import Database
from repro.exceptions import ConfigurationError


def three_factor_db(rows: int = 120) -> Database:
    """Y is (mostly) determined only by the *combination* of A, B, and C."""
    data = []
    for i in range(rows):
        a = (i % 2) + 1
        b = ((i // 2) % 2) + 1
        c = ((i // 4) % 2) + 1
        # XOR-like dependence on three inputs; occasionally flipped.
        y = ((a + b + c) % 2) + 1 if i % 11 else 2
        noise = ((i * 13) % 2) + 1
        data.append([a, b, c, y, noise])
    return Database(["A", "B", "C", "Y", "N"], data)


class TestGeneralizedAcv:
    def test_matches_restricted_acv_for_small_tails(self):
        db = three_factor_db()
        assert generalized_acv(db, ["A"], "Y") == pytest.approx(acv(db, ["A"], ["Y"]))
        assert generalized_acv(db, ["A", "B"], "Y") == pytest.approx(acv(db, ["A", "B"], ["Y"]))

    def test_empty_tail_is_baseline(self):
        db = three_factor_db()
        assert generalized_acv(db, [], "Y") == pytest.approx(acv(db, [], ["Y"]))

    def test_monotone_in_tail_size(self):
        db = three_factor_db()
        assert generalized_acv(db, ["A", "B", "C"], "Y") >= generalized_acv(db, ["A", "B"], "Y") - 1e-12

    def test_three_attribute_tail_captures_xor_structure(self):
        db = three_factor_db()
        triple = generalized_acv(db, ["A", "B", "C"], "Y")
        best_pair = max(
            generalized_acv(db, pair, "Y")
            for pair in (["A", "B"], ["A", "C"], ["B", "C"])
        )
        assert triple > best_pair + 0.05


class TestGeneralizedConfig:
    def test_invalid_max_tail_size(self):
        with pytest.raises(ConfigurationError):
            GeneralizedBuildConfig(max_tail_size=1)

    def test_invalid_gamma_extension(self):
        with pytest.raises(ConfigurationError):
            GeneralizedBuildConfig(gamma_extension=0.5)

    def test_invalid_beam_width(self):
        with pytest.raises(ConfigurationError):
            GeneralizedBuildConfig(beam_width=0)


class TestGeneralizedBuilder:
    def config(self, max_tail_size=3):
        base = CONFIG_C1.with_overrides(gamma_edge=1.0, gamma_hyperedge=1.0)
        return GeneralizedBuildConfig(
            base=base, max_tail_size=max_tail_size, gamma_extension=1.05, beam_width=6
        )

    def test_includes_three_attribute_tail_for_xor_target(self):
        db = three_factor_db()
        hypergraph = GeneralizedAssociationHypergraphBuilder(self.config()).build(db)
        assert hypergraph.has_edge(["A", "B", "C"], ["Y"])

    def test_max_tail_size_respected(self):
        db = three_factor_db()
        hypergraph = GeneralizedAssociationHypergraphBuilder(self.config(3)).build(db)
        assert max(edge.tail_size for edge in hypergraph.edges()) <= 3

    def test_size_two_matches_restricted_semantics(self):
        """Edges of sizes one and two obey the same γ rules as the restricted builder."""
        db = three_factor_db()
        hypergraph = GeneralizedAssociationHypergraphBuilder(self.config()).build(db)
        for edge in hypergraph.edges():
            assert 0.0 <= edge.weight <= 1.0 + 1e-9
            assert edge.head_size == 1

    def test_extension_edges_beat_their_parents(self):
        db = three_factor_db()
        config = self.config()
        hypergraph = GeneralizedAssociationHypergraphBuilder(config).build(db)
        for edge in hypergraph.edges():
            if edge.tail_size < 3:
                continue
            (head,) = edge.head
            best_parent = max(
                generalized_acv(db, sorted(edge.tail - {t}), head) for t in edge.tail
            )
            # The greedy growth required improvement over the particular
            # parent it extended, so the edge is at least near its best parent.
            assert edge.weight >= best_parent * 0.95

    def test_works_with_classifier_and_dominators(self):
        """Generalized hyperedges plug into the existing downstream algorithms."""
        from repro.core.classifier import AssociationBasedClassifier
        from repro.core.dominators import dominator_set_cover

        db = three_factor_db()
        hypergraph = GeneralizedAssociationHypergraphBuilder(self.config()).build(db)
        result = dominator_set_cover(hypergraph, target=["Y"])
        assert result.coverage == 1.0
        # Keeping only the strong (ACV >= 0.7) hyperedges leaves the
        # three-attribute tail, which predicts the XOR-style target almost
        # perfectly — something no size-<=2 combination can do.
        strong = hypergraph.threshold(0.7)
        classifier = AssociationBasedClassifier(strong)
        confidences = classifier.evaluate(db, ["A", "B", "C"], ["Y"])
        assert confidences["Y"] > 0.8

    def test_rejects_single_attribute_database(self):
        with pytest.raises(ConfigurationError):
            GeneralizedAssociationHypergraphBuilder(self.config()).build(
                Database(["A"], [[1], [2]])
            )
