"""Bit-for-bit parity of the segmented reduction kernel with ``math.fsum``.

The kernel is only admissible in the similarity/dominator/γ hot paths
because it is *exactly rounded*: every segment total must equal
``math.fsum`` of that segment's addends with ``==`` — same bits, same
signed zeros, same overflow behaviour.  The hypothesis suites here drive it
with the adversarial shapes floating-point summation is known to get wrong
(mixed magnitudes, mass cancellation, ``±0.0``, subnormals) plus the edge
segments the engine actually produces (empty, singleton, all-negative-zero).

Order-independence is part of the contract for sums (an exactly rounded
sum depends only on the addend multiset) and is asserted under shuffles;
``group_max`` deliberately does NOT promise it for NaN addends or the sign
of a zero maximum — see its docstring — so those cases are pinned to numpy
``maximum`` semantics instead.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.kernels import (
    SegmentedAccumulator,
    batched_group_max,
    group_max,
    segmented_fsum,
)
from repro.exceptions import ConfigurationError


def reference(values, segment_ids, num_segments):
    """Per-segment ``math.fsum`` in input order — the parity oracle."""
    buckets = [[] for _ in range(num_segments)]
    for value, segment in zip(values, segment_ids):
        buckets[segment].append(value)
    return [math.fsum(bucket) for bucket in buckets]


def assert_identical(got: np.ndarray, want: list[float]) -> None:
    """Equality including the sign of zero (``==`` treats ``-0.0 == 0.0``)."""
    assert got.shape == (len(want),)
    for g, w in zip(got.tolist(), want):
        assert g == w and math.copysign(1.0, g) == math.copysign(1.0, w), (g, w)


#: Finite doubles spanning the full exponent range, subnormals and both
#: zeros included — the adversarial pool the parity suite draws from.
adversarial_floats = st.one_of(
    st.floats(min_value=-1e3, max_value=1e3),
    st.floats(min_value=-1e280, max_value=1e280),
    st.sampled_from(
        [
            0.0,
            -0.0,
            5e-324,
            -5e-324,
            1.5e-323,
            1e-310,
            -1e-310,
            2.2250738585072014e-308,  # smallest normal
            -2.2250738585072014e-308,
            1.0,
            -1.0,
            2.0**53,
            -(2.0**53),
            1.0 + 2.0**-52,
        ]
    ),
)


@st.composite
def segmented_inputs(draw, elements=adversarial_floats, max_size=60):
    values = draw(st.lists(elements, max_size=max_size))
    num_segments = draw(st.integers(1, 6))
    segment_ids = [
        draw(st.integers(0, num_segments - 1)) for _ in range(len(values))
    ]
    return values, segment_ids, num_segments


class TestFsumParity:
    @given(case=segmented_inputs())
    @settings(max_examples=300, deadline=None)
    def test_bit_for_bit_equal_to_fsum(self, case):
        values, segment_ids, num_segments = case
        got = segmented_fsum(values, segment_ids, num_segments)
        assert_identical(got, reference(values, segment_ids, num_segments))

    @given(case=segmented_inputs(), seed=st.integers(0, 2**31))
    @settings(max_examples=150, deadline=None)
    def test_within_segment_order_never_matters(self, case, seed):
        # An exactly rounded sum depends only on the addend multiset, so a
        # global shuffle (which permutes within and across segments alike)
        # must reproduce the same bits.
        values, segment_ids, num_segments = case
        baseline = segmented_fsum(values, segment_ids, num_segments)
        order = np.random.RandomState(seed).permutation(len(values))
        shuffled = segmented_fsum(
            np.asarray(values, dtype=np.float64)[order],
            np.asarray(segment_ids, dtype=np.int64)[order],
            num_segments,
        )
        assert_identical(shuffled, baseline.tolist())

    @given(case=segmented_inputs(), mapping=st.permutations(range(6)))
    @settings(max_examples=150, deadline=None)
    def test_segment_permutation_invariance(self, case, mapping):
        # Relabeling segments permutes the output rows and nothing else.
        values, segment_ids, num_segments = case
        baseline = segmented_fsum(values, segment_ids, num_segments)
        relabeled = [mapping[s] for s in segment_ids]
        permuted = segmented_fsum(values, relabeled, 6)
        for old, new in enumerate(mapping[:num_segments]):
            assert permuted[new] == baseline[old]

    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False), max_size=40
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_single_segment_any_finite_doubles(self, values):
        # Unconstrained finite doubles, all in one segment: the overflow
        # behaviours may legitimately differ (fsum can overflow on a
        # running partial sum; the superaccumulator only on the total), so
        # only compare when the oracle stays finite.
        try:
            want = math.fsum(values)
        except OverflowError:
            return
        got = segmented_fsum(values, [0] * len(values), 1)
        assert_identical(got, [want])

    def test_python_backend_matches_numpy_backend(self):
        rng = np.random.RandomState(7)
        values = rng.standard_normal(500) * 10.0 ** rng.randint(-200, 200, size=500)
        segment_ids = rng.randint(0, 9, size=500)
        assert kernels.set_backend("fsum") == "fsum"
        try:
            via_python = segmented_fsum(values, segment_ids, 9)
        finally:
            assert kernels.set_backend("numpy") == "numpy"
        via_numpy = segmented_fsum(values, segment_ids, 9)
        assert_identical(via_numpy, via_python.tolist())


class TestEdgeSegments:
    def test_empty_input_and_empty_segments(self):
        out = segmented_fsum([], [], 4)
        assert_identical(out, [0.0, 0.0, 0.0, 0.0])
        out = segmented_fsum([1.5, 2.5], [3, 3], 5)
        assert_identical(out, [0.0, 0.0, 0.0, 4.0, 0.0])

    def test_zero_segments(self):
        assert segmented_fsum([], [], 0).shape == (0,)
        assert segmented_fsum([], []).shape == (0,)

    @given(value=adversarial_floats)
    @settings(max_examples=100, deadline=None)
    def test_single_element_segments(self, value):
        # fsum of one addend is the addend — except that a lone -0.0 sums
        # to +0.0 (fsum never returns a negative zero).
        got = segmented_fsum([value], [0], 1)
        assert_identical(got, [math.fsum([value])])

    def test_all_negative_zero_segments(self):
        # fsum([-0.0, ..., -0.0]) == +0.0: zero totals are always +0.0.
        for count in (1, 2, 7):
            got = segmented_fsum([-0.0] * count, [0] * count, 1)
            assert_identical(got, [0.0])
        mixed = segmented_fsum([-0.0, 0.0, -0.0], [0, 1, 1], 2)
        assert_identical(mixed, [0.0, 0.0])

    def test_exact_cancellation_is_positive_zero(self):
        got = segmented_fsum([1e300, -1e300, 2.5, -2.5], [0, 0, 0, 0], 1)
        assert_identical(got, [0.0])

    def test_subnormal_totals_are_exact(self):
        tiny = 5e-324
        got = segmented_fsum([tiny] * 3 + [-tiny], [0] * 4, 1)
        assert_identical(got, [math.fsum([tiny] * 3 + [-tiny])])

    def test_overflowing_total_raises_like_fsum(self):
        with pytest.raises(OverflowError):
            segmented_fsum([1e308, 1e308], [0, 0], 1)
        with pytest.raises(OverflowError):
            math.fsum([1e308, 1e308])

    def test_nonfinite_segments_fall_back_to_fsum_semantics(self):
        out = segmented_fsum([np.inf, 1.0, 2.0, np.nan], [0, 0, 1, 2], 3)
        assert out[0] == np.inf and out[1] == 2.0 and math.isnan(out[2])
        with pytest.raises(ValueError):
            segmented_fsum([np.inf, -np.inf, 1.0], [0, 0, 1], 2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            segmented_fsum([1.0, 2.0], [0], 1)
        with pytest.raises(ValueError):
            segmented_fsum([1.0], [1], 1)
        with pytest.raises(ValueError):
            segmented_fsum([1.0], [-1], 1)
        with pytest.raises(ConfigurationError):
            kernels.set_backend("simd-of-the-gaps")

    def test_numba_request_degrades_gracefully(self):
        # The optional JIT package is absent here: requesting it must land
        # on a working exact backend, not fail.
        assert kernels.set_backend("numba") == "numpy"
        assert kernels.active_backend() == "numpy"
        assert "numpy" in kernels.available_backends()
        assert "fsum" in kernels.available_backends()


class TestAccumulator:
    @given(case=segmented_inputs(max_size=30), split=st.integers(0, 30))
    @settings(max_examples=150, deadline=None)
    def test_split_adds_equal_one_shot(self, case, split):
        # Interleaving addends across add() calls cannot change the bits.
        values, segment_ids, num_segments = case
        values = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(values)
        values = values[finite]
        segment_ids = np.asarray(segment_ids, dtype=np.int64)[finite]
        split = min(split, values.size)
        acc = SegmentedAccumulator.for_values(num_segments, values)
        acc.add(segment_ids[:split], values[:split])
        acc.add(segment_ids[split:], values[split:])
        assert_identical(
            acc.round(), reference(values, segment_ids, num_segments)
        )

    def test_paired_rows_share_the_base_totals(self):
        pool = np.array([0.1, 0.2, 1e-300, 7.5, -0.3, 2.0**40])
        ids = np.array([0, 0, 1, 1, 2, 2])
        base = SegmentedAccumulator.for_values(3, pool)
        base.add(ids, pool)
        pairs = SegmentedAccumulator.paired(
            base, np.array([0, 0, 1]), np.array([1, 2, 2])
        )
        corrections = np.array([-0.1, 2.5])
        pairs.add(np.array([0, 2]), corrections)
        want = [
            math.fsum([0.1, 0.2, 1e-300, 7.5, -0.1]),
            math.fsum([0.1, 0.2, -0.3, 2.0**40]),
            math.fsum([1e-300, 7.5, -0.3, 2.0**40, 2.5]),
        ]
        assert_identical(pairs.round(), want)

    def test_window_must_cover_added_values(self):
        acc = SegmentedAccumulator.for_values(1, np.array([1.0]))
        with pytest.raises(ValueError):
            acc.add(np.array([0]), np.array([1e300]))


class TestGroupMax:
    @given(case=segmented_inputs())
    @settings(max_examples=150, deadline=None)
    def test_matches_python_max(self, case):
        values, segment_ids, num_segments = case
        got = group_max(values, segment_ids, num_segments)
        for segment in range(num_segments):
            bucket = [v for v, s in zip(values, segment_ids) if s == segment]
            if bucket:
                assert got[segment] == max(bucket)
            else:
                assert got[segment] == -np.inf

    def test_empty_segments_take_the_initial_value(self):
        got = group_max([3, 1], [1, 1], 3, initial=0.0)
        assert got.tolist() == [0.0, 3.0, 0.0]

    def test_documented_non_promises(self):
        # NaN propagates (numpy maximum semantics, unlike Python max) ...
        got = group_max([1.0, np.nan], [0, 0], 1)
        assert math.isnan(got[0])
        # ... and a zero maximum's sign follows numpy, whichever it is.
        got = group_max([-0.0, 0.0], [0, 0], 1)
        assert got[0] == 0.0

    def test_batched_group_max_matches_flat(self):
        rng = np.random.RandomState(3)
        counts = rng.randint(0, 50, size=(5, 12))
        batched = batched_group_max(counts, 4)
        assert batched.shape == (5, 3)
        for row in range(5):
            ids = np.repeat(np.arange(3), 4)
            flat = group_max(counts[row], ids, 3)
            assert batched[row].tolist() == flat.tolist()
