"""Tests for in-/out-similarity (Definition 3.11) and the Euclidean baseline."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import (
    combined_similarity,
    euclidean_similarity,
    in_similarity,
    out_similarity,
    similarity_distance,
)
from repro.hypergraph.dhg import DirectedHypergraph


def example_3_12_hypergraph():
    """The hypergraph of Example 3.12 in the paper."""
    h = DirectedHypergraph(["A1", "A2", "A3", "A4", "A5", "A6"])
    h.add_edge(["A1", "A3"], ["A6"], weight=0.4)  # a
    h.add_edge(["A1", "A4"], ["A6"], weight=0.5)  # b
    h.add_edge(["A2", "A3"], ["A6"], weight=0.6)  # c
    h.add_edge(["A2", "A4", "A5"], ["A6"], weight=0.7)  # d
    h.add_edge(["A4", "A5"], ["A6"], weight=0.8)  # e
    return h


class TestExample312:
    def test_out_similarity_matches_paper(self):
        """Example 3.12: out-sim(A1, A2) = 0.4 / (0.6 + 0.5 + 0.7) = 0.22."""
        h = example_3_12_hypergraph()
        assert out_similarity(h, "A1", "A2") == pytest.approx(0.4 / 1.8, abs=1e-9)

    def test_out_similarity_symmetric_on_example(self):
        h = example_3_12_hypergraph()
        assert out_similarity(h, "A1", "A2") == pytest.approx(out_similarity(h, "A2", "A1"))


class TestSimilarityBasics:
    def make_simple(self):
        h = DirectedHypergraph(["A", "B", "C", "D"])
        h.add_edge(["A"], ["C"], weight=0.6)
        h.add_edge(["B"], ["C"], weight=0.4)
        h.add_edge(["A"], ["D"], weight=0.5)
        return h

    def test_self_similarity_is_one(self):
        h = self.make_simple()
        assert in_similarity(h, "A", "A") == 1.0
        assert out_similarity(h, "C", "C") == 1.0

    def test_out_similarity_matched_and_unmatched(self):
        h = self.make_simple()
        # A and B share the ->C edge (min 0.4 / max 0.6), A also has ->D (unmatched 0.5).
        assert out_similarity(h, "A", "B") == pytest.approx(0.4 / (0.6 + 0.5))

    def test_in_similarity(self):
        h = DirectedHypergraph(["X", "Y", "P", "Q"])
        h.add_edge(["P"], ["X"], weight=0.9)
        h.add_edge(["P"], ["Y"], weight=0.3)
        h.add_edge(["Q"], ["X"], weight=0.2)
        # Matched pair via P (min 0.3, max 0.9); unmatched Q->X (0.2).
        assert in_similarity(h, "X", "Y") == pytest.approx(0.3 / (0.9 + 0.2))

    def test_no_edges_gives_zero(self):
        h = DirectedHypergraph(["A", "B"])
        assert out_similarity(h, "A", "B") == 0.0
        assert in_similarity(h, "A", "B") == 0.0

    def test_combined_similarity_is_average(self):
        h = self.make_simple()
        expected = 0.5 * (in_similarity(h, "A", "B") + out_similarity(h, "A", "B"))
        assert combined_similarity(h, "A", "B") == pytest.approx(expected)

    def test_similarity_distance_complements(self):
        h = self.make_simple()
        assert similarity_distance(h, "A", "B") == pytest.approx(
            1.0 - combined_similarity(h, "A", "B")
        )
        assert similarity_distance(h, "A", "A") == 0.0

    def test_identical_roles_give_similarity_one(self):
        h = DirectedHypergraph(["A", "B", "C"])
        h.add_edge(["A"], ["C"], weight=0.5)
        h.add_edge(["B"], ["C"], weight=0.5)
        assert out_similarity(h, "A", "B") == pytest.approx(1.0)

    def test_rewrite_collision_counts_as_unmatched(self):
        """An edge whose rewrite would merge tail and head has no counterpart."""
        h = DirectedHypergraph(["A", "B", "C"])
        h.add_edge(["A"], ["B"], weight=0.5)
        # Rewriting tail A->B collides with head B; the edge is unmatched.
        assert out_similarity(h, "A", "B") == 0.0


class TestSimilarityOnBuiltHypergraph:
    def test_values_in_unit_interval(self, tiny_hypergraph):
        names = sorted(tiny_hypergraph.vertices, key=str)[:6]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                for fn in (in_similarity, out_similarity):
                    value = fn(tiny_hypergraph, a, b)
                    assert 0.0 <= value <= 1.0 + 1e-9

    def test_symmetry(self, tiny_hypergraph):
        names = sorted(tiny_hypergraph.vertices, key=str)[:6]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert in_similarity(tiny_hypergraph, a, b) == pytest.approx(
                    in_similarity(tiny_hypergraph, b, a)
                )
                assert out_similarity(tiny_hypergraph, a, b) == pytest.approx(
                    out_similarity(tiny_hypergraph, b, a)
                )


class TestEuclideanSimilarity:
    def test_identical_series(self):
        assert euclidean_similarity([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_opposite_series(self):
        assert euclidean_similarity([1.0, -1.0], [-1.0, 1.0]) == pytest.approx(0.0)

    def test_scaling_invariance(self):
        a = [0.1, -0.2, 0.3, 0.05]
        b = [0.2, -0.4, 0.6, 0.1]
        assert euclidean_similarity(a, b) == pytest.approx(1.0)

    def test_mismatched_length_rejected(self):
        with pytest.raises(ValueError):
            euclidean_similarity([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            euclidean_similarity([], [])

    def test_zero_vector_handled(self):
        assert 0.0 <= euclidean_similarity([0.0, 0.0], [1.0, 1.0]) <= 1.0

    @given(
        values=st.lists(
            st.tuples(
                st.floats(-1, 1, allow_nan=False), st.floats(-1, 1, allow_nan=False)
            ),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_range_and_symmetry(self, values):
        a = [x for x, _ in values]
        b = [y for _, y in values]
        similarity = euclidean_similarity(a, b)
        assert 0.0 - 1e-9 <= similarity <= 1.0 + 1e-9
        assert similarity == pytest.approx(euclidean_similarity(b, a))
        assert not math.isnan(similarity)
