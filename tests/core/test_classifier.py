"""Tests for the association-based classifier (Algorithm 9)."""

from __future__ import annotations

import pytest

from repro.core.builder import build_association_hypergraph
from repro.core.classifier import (
    AssociationBasedClassifier,
    classification_confidence,
)
from repro.core.config import CONFIG_C1
from repro.core.dominators import dominator_set_cover
from repro.data.database import Database
from repro.exceptions import ClassificationError
from repro.hypergraph.dhg import DirectedHypergraph
from repro.rules.association_table import AssociationRow, AssociationTable


def manual_hypergraph():
    """A hand-built hypergraph with known association tables for {A, B} -> Y."""
    table_ab = AssociationTable(
        ("A", "B"),
        ("Y",),
        (
            AssociationRow((1, 1), 0.4, (1,), 0.9),
            AssociationRow((1, 2), 0.2, (2,), 0.8),
            AssociationRow((2, 1), 0.3, (2,), 0.6),
            AssociationRow((2, 2), 0.1, (1,), 0.7),
        ),
    )
    table_a = AssociationTable(
        ("A",),
        ("Y",),
        (
            AssociationRow((1,), 0.6, (1,), 0.65),
            AssociationRow((2,), 0.4, (2,), 0.55),
        ),
    )
    h = DirectedHypergraph(["A", "B", "Y", "Z"])
    h.add_edge(["A", "B"], ["Y"], weight=table_ab.acv(), payload=table_ab)
    h.add_edge(["A"], ["Y"], weight=table_a.acv(), payload=table_a)
    return h


class TestPredictAttribute:
    def test_votes_combine_edge_and_hyperedge(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        prediction = classifier.predict_attribute("Y", {"A": 1, "B": 1})
        # Contributions: hyperedge row (1,1): 0.4*0.9 = 0.36 for value 1;
        # edge row (1,): 0.6*0.65 = 0.39 for value 1.  All votes go to 1.
        assert prediction.value == 1
        assert prediction.confidence == pytest.approx(1.0)
        assert prediction.supporting_edges == 2
        assert prediction.votes[1] == pytest.approx(0.36 + 0.39)

    def test_conflicting_votes_are_normalized(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        prediction = classifier.predict_attribute("Y", {"A": 1, "B": 2})
        # Hyperedge votes 2 with 0.2*0.8 = 0.16; edge votes 1 with 0.39.
        assert prediction.value == 1
        assert prediction.confidence == pytest.approx(0.39 / (0.39 + 0.16))

    def test_partial_evidence_uses_only_matching_tails(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        prediction = classifier.predict_attribute("Y", {"A": 2})
        assert prediction.supporting_edges == 1  # only the A -> Y edge applies
        assert prediction.value == 2

    def test_unseen_evidence_combination_abstains(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        prediction = classifier.predict_attribute("Y", {"A": 9, "B": 9})
        assert prediction.is_abstention
        assert prediction.confidence == 0.0

    def test_no_supporting_edges_abstains(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        prediction = classifier.predict_attribute("Z", {"A": 1, "B": 1})
        assert prediction.is_abstention

    def test_target_in_evidence_rejected(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        with pytest.raises(ClassificationError):
            classifier.predict_attribute("Y", {"Y": 1, "A": 1})

    def test_unknown_target_rejected(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        with pytest.raises(ClassificationError):
            classifier.predict_attribute("NOPE", {"A": 1})

    def test_predict_many_targets(self):
        classifier = AssociationBasedClassifier(manual_hypergraph())
        predictions = classifier.predict(["Y", "Z"], {"A": 1, "B": 1})
        assert set(predictions) == {"Y", "Z"}
        assert predictions["Y"].value == 1


class TestEvaluate:
    def deterministic_db(self):
        """Y equals A whenever A == B, otherwise Y is 3 (still predictable from A, B)."""
        rows = []
        for i in range(60):
            a = (i % 2) + 1
            b = ((i // 2) % 2) + 1
            y = a if a == b else 3
            rows.append([a, b, y])
        return Database(["A", "B", "Y"], rows)

    def test_perfectly_predictable_target(self):
        db = self.deterministic_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1.with_overrides(k=3))
        classifier = AssociationBasedClassifier(hypergraph)
        confidences = classifier.evaluate(db, ["A", "B"], ["Y"])
        assert confidences["Y"] == pytest.approx(1.0)

    def test_evaluate_matches_predict_attribute(self):
        db = self.deterministic_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1.with_overrides(k=3))
        classifier = AssociationBasedClassifier(hypergraph)
        confidences = classifier.evaluate(db, ["A", "B"], ["Y"])
        hits = 0
        for row in db.rows():
            prediction = classifier.predict_attribute("Y", {"A": row["A"], "B": row["B"]})
            hits += int(prediction.value == row["Y"])
        assert confidences["Y"] == pytest.approx(hits / db.num_observations)

    def test_evaluate_requires_evidence_in_database(self):
        db = self.deterministic_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1.with_overrides(k=3))
        classifier = AssociationBasedClassifier(hypergraph)
        with pytest.raises(ClassificationError):
            classifier.evaluate(db, ["NOPE"], ["Y"])

    def test_evaluate_requires_targets(self):
        db = self.deterministic_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1.with_overrides(k=3))
        classifier = AssociationBasedClassifier(hypergraph)
        with pytest.raises(ClassificationError):
            classifier.evaluate(db, ["A", "B", "Y"], [])

    def test_confidences_in_unit_interval(self, tiny_hypergraph, tiny_market_db):
        from repro.core.dominators import threshold_by_top_fraction

        pruned = threshold_by_top_fraction(tiny_hypergraph, 0.4)
        dominators = list(dominator_set_cover(pruned).dominators)
        classifier = AssociationBasedClassifier(tiny_hypergraph)
        targets = [a for a in tiny_market_db.attributes if a not in set(dominators)][:5]
        confidences = classifier.evaluate(tiny_market_db, dominators, targets)
        assert all(0.0 <= c <= 1.0 for c in confidences.values())

    def test_in_sample_beats_chance(self, tiny_hypergraph, tiny_market_db):
        """On the training data the classifier should beat the 1/k random baseline."""
        from repro.core.dominators import threshold_by_top_fraction

        pruned = threshold_by_top_fraction(tiny_hypergraph, 0.4)
        dominators = list(dominator_set_cover(pruned).dominators)
        classifier = AssociationBasedClassifier(tiny_hypergraph)
        targets = [a for a in tiny_market_db.attributes if a not in set(dominators)]
        mean_confidence = classification_confidence(
            classifier.evaluate(tiny_market_db, dominators, targets)
        )
        assert mean_confidence > 1.0 / 3.0


class TestClassificationConfidence:
    def test_mean(self):
        assert classification_confidence({"A": 0.5, "B": 1.0}) == pytest.approx(0.75)

    def test_empty(self):
        assert classification_confidence({}) == 0.0
