"""Tests for head-restricted association-hypergraph construction (disease-prediction use case)."""

from __future__ import annotations

import pytest

from repro.core.builder import AssociationHypergraphBuilder, build_association_hypergraph
from repro.core.classifier import AssociationBasedClassifier
from repro.core.config import CONFIG_C1
from repro.data.generators import GenePathwaySpec, gene_expression_database
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def gene_data():
    return gene_expression_database(GenePathwaySpec(num_patients=200), seed=12)


@pytest.fixture(scope="module")
def config():
    return CONFIG_C1.with_overrides(gamma_edge=1.02, gamma_hyperedge=1.01)


class TestHeadRestriction:
    def test_only_requested_heads_appear(self, gene_data, config):
        hypergraph = build_association_hypergraph(
            gene_data.database, config, heads=["Disease"]
        )
        assert hypergraph.num_edges > 0
        assert all(edge.head == frozenset({"Disease"}) for edge in hypergraph.edges())

    def test_all_attributes_remain_vertices(self, gene_data, config):
        hypergraph = build_association_hypergraph(
            gene_data.database, config, heads=["Disease"]
        )
        assert hypergraph.vertices == frozenset(gene_data.database.attributes)

    def test_restricted_edges_match_unrestricted_build(self, gene_data, config):
        """Restricting heads gives exactly the Disease-headed slice of the full build."""
        full = build_association_hypergraph(gene_data.database, config)
        restricted = build_association_hypergraph(gene_data.database, config, heads=["Disease"])
        full_disease_edges = {
            edge.key(): edge.weight
            for edge in full.edges()
            if edge.head == frozenset({"Disease"})
        }
        restricted_edges = {edge.key(): edge.weight for edge in restricted.edges()}
        assert restricted_edges == pytest.approx(full_disease_edges)

    def test_stats_reflect_restricted_build(self, gene_data, config):
        builder = AssociationHypergraphBuilder(config)
        hypergraph = builder.build(gene_data.database, heads=["Disease"])
        stats = builder.last_stats
        assert stats.total_edges == hypergraph.num_edges

    def test_unknown_head_rejected(self, gene_data, config):
        with pytest.raises(ConfigurationError):
            build_association_hypergraph(gene_data.database, config, heads=["Nope"])

    def test_empty_heads_rejected(self, gene_data, config):
        with pytest.raises(ConfigurationError):
            build_association_hypergraph(gene_data.database, config, heads=[])

    def test_disease_prediction_beats_majority_baseline(self, gene_data, config):
        """The Chapter 6 scenario: predict the disease from gene values only."""
        database = gene_data.database
        hypergraph = build_association_hypergraph(database, config, heads=["Disease"])
        classifier = AssociationBasedClassifier(hypergraph)
        confidences = classifier.evaluate(database, list(gene_data.gene_names), ["Disease"])
        majority = max(
            database.support({"Disease": "present"}), database.support({"Disease": "absent"})
        )
        assert confidences["Disease"] >= majority - 0.02
