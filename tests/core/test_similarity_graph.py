"""Tests for the similarity graph (Definition 3.13)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.similarity import combined_similarity
from repro.core.similarity_graph import (
    SimilarityGraph,
    build_similarity_graph,
    build_similarity_graph_reference,
)
from repro.exceptions import HypergraphError, MissingDistanceError
from repro.hypergraph.dhg import DirectedHypergraph


class TestSimilarityGraph:
    def make_graph(self):
        graph = SimilarityGraph(["A", "B", "C"])
        graph.set_distance("A", "B", 0.2)
        graph.set_distance("A", "C", 0.9)
        graph.set_distance("B", "C", 0.8)
        return graph

    def test_needs_two_nodes(self):
        with pytest.raises(HypergraphError):
            SimilarityGraph(["A"])

    def test_distance_symmetric_storage(self):
        graph = self.make_graph()
        assert graph.distance("B", "A") == pytest.approx(0.2)

    def test_self_distance_zero(self):
        assert self.make_graph().distance("A", "A") == 0.0

    def test_missing_distance_rejected(self):
        graph = SimilarityGraph(["A", "B", "C"])
        with pytest.raises(HypergraphError):
            graph.distance("A", "B")

    def test_missing_distance_error_names_the_pair(self):
        graph = SimilarityGraph(["A", "B", "C"])
        with pytest.raises(MissingDistanceError) as excinfo:
            graph.distance("A", "C")
        assert excinfo.value.pair == ("A", "C")
        assert "'A'" in str(excinfo.value) and "'C'" in str(excinfo.value)

    def test_nan_distance_rejected(self):
        graph = SimilarityGraph(["A", "B"])
        for nan in (float("nan"), math.nan, np.nan):
            with pytest.raises(HypergraphError, match="NaN"):
                graph.set_distance("A", "B", nan)
        # A rejected NaN must not have recorded anything.
        with pytest.raises(MissingDistanceError):
            graph.distance("A", "B")

    def test_unknown_node_rejected(self):
        graph = SimilarityGraph(["A", "B"])
        with pytest.raises(HypergraphError):
            graph.set_distance("A", "Z", 0.5)
        with pytest.raises(HypergraphError):
            graph.distance("A", "Z")

    def test_distance_matrix_copy(self):
        graph = self.make_graph()
        matrix = graph.distance_matrix()
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == pytest.approx(0.2)
        assert (matrix == matrix.T).all()
        matrix[0, 1] = 0.7  # a copy: the graph must be unaffected
        assert graph.distance("A", "B") == pytest.approx(0.2)

    def test_is_complete(self):
        graph = SimilarityGraph(["A", "B", "C"])
        assert not graph.is_complete()
        graph.set_distance("A", "B", 0.2)
        graph.set_distance("A", "C", 0.3)
        assert not graph.is_complete()
        graph.set_distance("B", "C", 0.4)
        assert graph.is_complete()

    def test_out_of_range_distance_rejected(self):
        graph = SimilarityGraph(["A", "B"])
        with pytest.raises(HypergraphError):
            graph.set_distance("A", "B", 1.5)

    def test_self_distance_cannot_be_set(self):
        graph = SimilarityGraph(["A", "B"])
        with pytest.raises(HypergraphError):
            graph.set_distance("A", "A", 0.5)

    def test_pairs(self):
        assert len(self.make_graph().pairs()) == 3

    def test_mean_distance(self):
        assert self.make_graph().mean_distance() == pytest.approx((0.2 + 0.9 + 0.8) / 3)

    def test_diameter(self):
        graph = self.make_graph()
        assert graph.diameter() == pytest.approx(0.9)
        assert graph.diameter(["A", "B"]) == pytest.approx(0.2)

    def test_triangle_inequality_check(self):
        good = self.make_graph()
        assert good.satisfies_triangle_inequality()
        bad = SimilarityGraph(["A", "B", "C"])
        bad.set_distance("A", "B", 0.1)
        bad.set_distance("B", "C", 0.1)
        bad.set_distance("A", "C", 0.9)
        assert not bad.satisfies_triangle_inequality()


class TestBuildSimilarityGraph:
    def test_distances_match_definition(self):
        h = DirectedHypergraph(["A", "B", "C", "D"])
        h.add_edge(["A"], ["C"], weight=0.6)
        h.add_edge(["B"], ["C"], weight=0.4)
        h.add_edge(["A"], ["D"], weight=0.5)
        graph = build_similarity_graph(h)
        for first, second, distance in graph.pairs():
            assert distance == pytest.approx(1.0 - combined_similarity(h, first, second))

    def test_nodes_default_to_all_vertices(self, tiny_hypergraph):
        graph = build_similarity_graph(tiny_hypergraph)
        assert set(graph.nodes) == set(tiny_hypergraph.vertices)

    def test_restricted_node_collection(self, tiny_hypergraph):
        nodes = sorted(tiny_hypergraph.vertices, key=str)[:5]
        graph = build_similarity_graph(tiny_hypergraph, nodes)
        assert graph.nodes == nodes
        assert len(graph.pairs()) == 10

    def test_distances_in_unit_interval(self, tiny_hypergraph):
        nodes = sorted(tiny_hypergraph.vertices, key=str)[:8]
        graph = build_similarity_graph(tiny_hypergraph, nodes)
        assert all(0.0 <= d <= 1.0 for _a, _b, d in graph.pairs())

    def test_index_build_equals_reference_build(self, tiny_hypergraph):
        fast = build_similarity_graph(tiny_hypergraph)
        reference = build_similarity_graph_reference(tiny_hypergraph)
        assert fast.nodes == reference.nodes
        assert (fast.distance_matrix() == reference.distance_matrix()).all()
