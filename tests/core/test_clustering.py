"""Tests for attribute clustering over the similarity graph (Section 3.3.2)."""

from __future__ import annotations

import pytest

from repro.core.clustering import cluster_attributes
from repro.core.similarity_graph import SimilarityGraph
from repro.exceptions import ConfigurationError


def two_blob_graph():
    """Two well-separated groups: {A, B, C} and {X, Y, Z}."""
    nodes = ["A", "B", "C", "X", "Y", "Z"]
    graph = SimilarityGraph(nodes)
    close, far = 0.1, 0.9
    for i, first in enumerate(nodes):
        for second in nodes[i + 1 :]:
            same_group = (first in "ABC") == (second in "ABC")
            graph.set_distance(first, second, close if same_group else far)
    return graph


class TestClusterAttributes:
    def test_two_clusters_recover_blobs(self):
        clustering = cluster_attributes(two_blob_graph(), t=2, first_center="A")
        groups = {frozenset(members) for members in clustering.clusters.values()}
        assert groups == {frozenset({"A", "B", "C"}), frozenset({"X", "Y", "Z"})}

    def test_every_node_assigned_exactly_once(self):
        clustering = cluster_attributes(two_blob_graph(), t=3)
        assigned = [m for members in clustering.clusters.values() for m in members]
        assert sorted(assigned) == ["A", "B", "C", "X", "Y", "Z"]

    def test_centers_belong_to_their_cluster(self):
        clustering = cluster_attributes(two_blob_graph(), t=2)
        for center, members in clustering.clusters.items():
            assert center in members

    def test_t_equals_node_count_gives_singletons(self):
        clustering = cluster_attributes(two_blob_graph(), t=6)
        assert all(len(m) == 1 for m in clustering.clusters.values())

    def test_invalid_t(self):
        with pytest.raises(ConfigurationError):
            cluster_attributes(two_blob_graph(), t=0)
        with pytest.raises(ConfigurationError):
            cluster_attributes(two_blob_graph(), t=7)

    def test_invalid_first_center(self):
        with pytest.raises(ConfigurationError):
            cluster_attributes(two_blob_graph(), t=2, first_center="NOPE")

    def test_cluster_of(self):
        clustering = cluster_attributes(two_blob_graph(), t=2, first_center="A")
        assert clustering.cluster_of("B") == clustering.cluster_of("C")
        with pytest.raises(ConfigurationError):
            clustering.cluster_of("NOPE")

    def test_sizes_and_largest(self):
        clustering = cluster_attributes(two_blob_graph(), t=2, first_center="A")
        assert sorted(clustering.sizes().values()) == [3, 3]
        assert len(clustering.largest_cluster()) == 3


class TestClusteringQuality:
    def test_mean_diameter_of_good_clustering(self):
        graph = two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        assert clustering.mean_diameter(graph) == pytest.approx(0.1)
        assert clustering.max_diameter(graph) == pytest.approx(0.1)

    def test_mean_diameter_below_overall_mean_distance(self):
        """The paper's Figure 5.3 quality check: clusters are tighter than the whole graph."""
        graph = two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        assert clustering.mean_diameter(graph) < graph.mean_distance()

    def test_gonzalez_2_approximation_on_metric_graph(self):
        """Diameter of the greedy clustering is within 2x of the best over all center choices."""
        graph = two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        # Optimal 2-clustering of the two blobs has diameter 0.1.
        assert clustering.max_diameter(graph) <= 2 * 0.1 + 1e-9

    def test_sector_purity_perfect(self):
        graph = two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        sectors = {"A": "S1", "B": "S1", "C": "S1", "X": "S2", "Y": "S2", "Z": "S2"}
        assert clustering.sector_purity(sectors) == pytest.approx(1.0)

    def test_sector_purity_mixed(self):
        graph = two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        sectors = {"A": "S1", "B": "S1", "C": "S2", "X": "S2", "Y": "S2", "Z": "S1"}
        assert clustering.sector_purity(sectors) == pytest.approx(4 / 6)

    def test_sector_purity_missing_nodes_ignored(self):
        graph = two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        assert clustering.sector_purity({}) == 0.0
