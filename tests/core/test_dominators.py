"""Tests for leading-indicator (dominator) computation (Section 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominators import (
    acv_threshold_for_top_fraction,
    dominator_greedy_cover,
    dominator_set_cover,
    is_dominator,
    threshold_by_top_fraction,
)
from repro.exceptions import ConfigurationError
from repro.hypergraph.dhg import DirectedHypergraph


def star_hypergraph():
    """Vertex HUB predicts every other vertex directly."""
    h = DirectedHypergraph(["HUB", "A", "B", "C", "D"])
    for target in ["A", "B", "C", "D"]:
        h.add_edge(["HUB"], [target], weight=0.9)
    return h


def pair_hypergraph():
    """Vertices P and Q together predict everything else via 2-to-1 hyperedges."""
    h = DirectedHypergraph(["P", "Q", "A", "B", "C"])
    for target in ["A", "B", "C"]:
        h.add_edge(["P", "Q"], [target], weight=0.8)
    return h


class TestIsDominator:
    def test_hub_dominates_star(self):
        assert is_dominator(star_hypergraph(), ["HUB"])

    def test_leaf_does_not_dominate(self):
        assert not is_dominator(star_hypergraph(), ["A"])

    def test_partial_target(self):
        assert is_dominator(star_hypergraph(), ["HUB"], target=["A", "B"])

    def test_pair_needed_for_hyperedge_coverage(self):
        h = pair_hypergraph()
        assert not is_dominator(h, ["P"])
        assert is_dominator(h, ["P", "Q"])


class TestAlgorithm5:
    def test_star(self):
        result = dominator_greedy_cover(star_hypergraph())
        assert result.dominators == ("HUB",)
        assert result.coverage == 1.0
        assert result.uncovered == frozenset()

    def test_pair(self):
        result = dominator_greedy_cover(pair_hypergraph())
        assert set(result.dominators) == {"P", "Q"}
        assert result.coverage == 1.0

    def test_disconnected_vertices_become_dominators(self):
        h = DirectedHypergraph(["A", "B", "Lonely"])
        h.add_edge(["A"], ["B"], weight=0.5)
        result = dominator_greedy_cover(h)
        assert "Lonely" in result.dominators
        assert result.coverage == 1.0

    def test_target_restriction(self):
        result = dominator_greedy_cover(star_hypergraph(), target=["A", "B"])
        assert result.target == frozenset({"A", "B"})
        assert result.coverage == 1.0
        assert result.size <= 2

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            dominator_greedy_cover(star_hypergraph(), target=["NOPE"])

    def test_result_is_a_dominator(self, tiny_hypergraph):
        pruned = threshold_by_top_fraction(tiny_hypergraph, 0.4)
        result = dominator_greedy_cover(pruned)
        covered_goal = result.covered & result.target
        assert is_dominator(pruned, result.dominators, target=covered_goal)

    def test_high_coverage_on_market_hypergraph(self, tiny_hypergraph):
        pruned = threshold_by_top_fraction(tiny_hypergraph, 0.4)
        result = dominator_greedy_cover(pruned)
        assert result.coverage >= 0.9
        assert result.size < tiny_hypergraph.num_vertices


class TestAlgorithm6:
    def test_star(self):
        result = dominator_set_cover(star_hypergraph())
        assert result.dominators == ("HUB",)
        assert result.coverage == 1.0

    def test_pair(self):
        result = dominator_set_cover(pair_hypergraph())
        assert set(result.dominators) == {"P", "Q"}
        assert result.coverage == 1.0

    def test_enhancement1_prefers_smaller_addition(self):
        """With equal coverage, the candidate adding fewer new vertices wins."""
        h = DirectedHypergraph(["A", "B", "C", "T1", "T2"])
        # {A} covers T1 and T2; {B, C} also covers T1 and T2 but adds two vertices.
        h.add_edge(["A"], ["T1"], weight=0.9)
        h.add_edge(["A"], ["T2"], weight=0.9)
        h.add_edge(["B", "C"], ["T1"], weight=0.9)
        h.add_edge(["B", "C"], ["T2"], weight=0.9)
        result = dominator_set_cover(h, target=["T1", "T2"], enhancement1=True)
        assert set(result.dominators) == {"A"}

    def test_enhancements_do_not_change_coverage(self, tiny_hypergraph):
        pruned = threshold_by_top_fraction(tiny_hypergraph, 0.3)
        with_enh = dominator_set_cover(pruned, enhancement1=True, enhancement2=True)
        without_enh = dominator_set_cover(pruned, enhancement1=False, enhancement2=False)
        assert with_enh.coverage == pytest.approx(without_enh.coverage)

    def test_result_is_a_dominator(self, tiny_hypergraph):
        pruned = threshold_by_top_fraction(tiny_hypergraph, 0.4)
        result = dominator_set_cover(pruned)
        covered_goal = result.covered & result.target
        assert is_dominator(pruned, result.dominators, target=covered_goal)

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            dominator_set_cover(star_hypergraph(), target=["NOPE"])


class TestAcvThresholding:
    def test_threshold_value_orders_fractions(self, tiny_hypergraph):
        t40 = acv_threshold_for_top_fraction(tiny_hypergraph, 0.4)
        t20 = acv_threshold_for_top_fraction(tiny_hypergraph, 0.2)
        assert t20 >= t40

    def test_threshold_keeps_roughly_the_fraction(self, tiny_hypergraph):
        kept = threshold_by_top_fraction(tiny_hypergraph, 0.3).num_edges
        total = tiny_hypergraph.num_edges
        assert 0.2 * total <= kept <= 0.45 * total

    def test_invalid_fraction(self, tiny_hypergraph):
        with pytest.raises(ConfigurationError):
            acv_threshold_for_top_fraction(tiny_hypergraph, 0.0)
        with pytest.raises(ConfigurationError):
            acv_threshold_for_top_fraction(tiny_hypergraph, 1.0 + 1e-9)
        with pytest.raises(ConfigurationError):
            acv_threshold_for_top_fraction(tiny_hypergraph, -0.3)

    def test_empty_hypergraph(self):
        assert acv_threshold_for_top_fraction(DirectedHypergraph(["A", "B"]), 0.5) == 0.0

    def test_empty_hypergraph_threshold_keeps_no_edges(self):
        pruned = threshold_by_top_fraction(DirectedHypergraph(["A", "B"]), 0.5)
        assert pruned.num_edges == 0
        assert pruned.vertices == frozenset({"A", "B"})

    def test_fraction_one_keeps_every_edge(self, tiny_hypergraph):
        threshold = acv_threshold_for_top_fraction(tiny_hypergraph, 1.0)
        assert threshold == min(e.weight for e in tiny_hypergraph.edges())
        assert threshold_by_top_fraction(tiny_hypergraph, 1.0).num_edges == (
            tiny_hypergraph.num_edges
        )

    def test_tiny_fraction_keeps_at_least_the_top_edge(self):
        h = DirectedHypergraph(["A", "B", "C"])
        h.add_edge(["A"], ["B"], weight=0.9)
        h.add_edge(["B"], ["C"], weight=0.4)
        threshold = acv_threshold_for_top_fraction(h, 1e-6)
        assert threshold == pytest.approx(0.9)
        assert threshold_by_top_fraction(h, 1e-6).num_edges == 1

    def test_ties_at_the_cut_are_all_kept(self):
        """Edges tied with the cut-off weight survive the >= threshold."""
        h = DirectedHypergraph(["A", "B", "C", "D", "E"])
        h.add_edge(["A"], ["B"], weight=0.9)
        h.add_edge(["B"], ["C"], weight=0.5)
        h.add_edge(["C"], ["D"], weight=0.5)
        h.add_edge(["D"], ["E"], weight=0.5)
        # The top-50% cut lands on weight 0.5; every tied edge is kept.
        assert acv_threshold_for_top_fraction(h, 0.5) == pytest.approx(0.5)
        assert threshold_by_top_fraction(h, 0.5).num_edges == 4

    def test_single_edge_any_fraction(self):
        h = DirectedHypergraph(["A", "B"])
        h.add_edge(["A"], ["B"], weight=0.7)
        for fraction in (1e-9, 0.5, 1.0):
            assert acv_threshold_for_top_fraction(h, fraction) == pytest.approx(0.7)
            assert threshold_by_top_fraction(h, fraction).num_edges == 1


@st.composite
def random_hypergraph(draw):
    vertices = [f"V{i}" for i in range(draw(st.integers(3, 8)))]
    h = DirectedHypergraph(vertices)
    for _ in range(draw(st.integers(1, 15))):
        tail_size = draw(st.integers(1, 2))
        tail = draw(
            st.lists(st.sampled_from(vertices), min_size=tail_size, max_size=tail_size, unique=True)
        )
        head_pool = [v for v in vertices if v not in tail]
        head = [draw(st.sampled_from(head_pool))]
        h.add_edge(tail, head, weight=draw(st.floats(0.1, 1.0)))
    return h


class TestDominatorProperties:
    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_algorithm5_fully_covers_every_hypergraph(self, h):
        """Algorithm 5 always reaches full coverage: any uncovered vertex can join the dominator set itself."""
        result = dominator_greedy_cover(h)
        assert result.coverage == 1.0
        assert is_dominator(h, result.dominators)

    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_algorithm6_covers_every_vertex_touched_by_an_edge(self, h):
        """Algorithm 6 only adds tail sets, so isolated vertices may stay uncovered — but every vertex appearing in some hyperedge must be covered."""
        touched = set()
        for edge in h.edges():
            touched |= edge.tail | edge.head
        result = dominator_set_cover(h)
        assert touched <= result.covered
        assert is_dominator(h, result.dominators, target=result.covered & result.target)

    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_dominators_are_vertices_and_unique(self, h):
        for algorithm in (dominator_greedy_cover, dominator_set_cover):
            result = algorithm(h)
            assert set(result.dominators) <= h.vertices
            assert len(result.dominators) == len(set(result.dominators))
