"""Tests for association confidence values (Definition 3.6, Theorem 3.8)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acv import acv, acv_with_table, empty_tail_acv
from repro.data.database import Database
from repro.exceptions import RuleError


def toy_db():
    return Database(
        ["A", "B", "C"],
        [
            [1, 1, 1],
            [1, 1, 1],
            [1, 2, 2],
            [2, 1, 2],
            [2, 2, 2],
            [2, 2, 2],
        ],
    )


class TestEmptyTailAcv:
    def test_value(self):
        # C takes value 2 in 4 of 6 observations.
        assert empty_tail_acv(toy_db(), "C") == pytest.approx(4 / 6)

    def test_unknown_attribute(self):
        with pytest.raises(RuleError):
            empty_tail_acv(toy_db(), "Z")

    def test_empty_database(self):
        assert empty_tail_acv(Database(["A"], []), "A") == 0.0

    def test_acv_with_empty_tail_list(self):
        assert acv(toy_db(), [], ["C"]) == pytest.approx(4 / 6)

    def test_acv_empty_tail_requires_single_head(self):
        with pytest.raises(RuleError):
            acv(toy_db(), [], ["B", "C"])


class TestAcv:
    def test_single_tail_value(self):
        # A=1 rows: C is (1,1,2) -> majority 1 twice; A=2 rows: C all 2.
        expected = (3 / 6) * (2 / 3) + (3 / 6) * 1.0
        assert acv(toy_db(), ["A"], ["C"]) == pytest.approx(expected)

    def test_two_tail_value_at_least_single(self):
        single = acv(toy_db(), ["A"], ["C"])
        double = acv(toy_db(), ["A", "B"], ["C"])
        assert double >= single - 1e-12

    def test_acv_with_table_consistent(self):
        value, table = acv_with_table(toy_db(), ["A"], ["C"])
        assert value == pytest.approx(table.acv())

    def test_theorem_3_8_part_1(self):
        """ACV({A}, {X}) >= ACV(∅, {X})."""
        db = toy_db()
        for tail in ("A", "B"):
            assert acv(db, [tail], ["C"]) >= empty_tail_acv(db, "C") - 1e-12

    def test_theorem_3_8_part_2(self):
        """ACV({A,B}, {X}) >= max(ACV({A},{X}), ACV({B},{X}))."""
        db = toy_db()
        pair = acv(db, ["A", "B"], ["C"])
        assert pair >= max(acv(db, ["A"], ["C"]), acv(db, ["B"], ["C"])) - 1e-12


@st.composite
def discrete_database(draw):
    num_rows = draw(st.integers(1, 40))
    k = draw(st.integers(2, 4))
    rows = [
        [draw(st.integers(1, k)), draw(st.integers(1, k)), draw(st.integers(1, k))]
        for _ in range(num_rows)
    ]
    return Database(["X", "Y", "Z"], rows)


class TestAcvProperties:
    @given(db=discrete_database())
    @settings(max_examples=80, deadline=None)
    def test_monotonicity_theorem_3_8(self, db):
        """Adding a tail attribute never decreases the ACV (Theorem 3.8)."""
        baseline = empty_tail_acv(db, "Z")
        single_x = acv(db, ["X"], ["Z"])
        single_y = acv(db, ["Y"], ["Z"])
        pair = acv(db, ["X", "Y"], ["Z"])
        assert single_x >= baseline - 1e-9
        assert single_y >= baseline - 1e-9
        assert pair >= max(single_x, single_y) - 1e-9

    @given(db=discrete_database())
    @settings(max_examples=80, deadline=None)
    def test_acv_bounded_by_unit_interval(self, db):
        assert 0.0 <= acv(db, ["X", "Y"], ["Z"]) <= 1.0 + 1e-9
