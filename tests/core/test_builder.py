"""Tests for association-hypergraph construction (Section 3.2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acv import acv, empty_tail_acv
from repro.core.builder import AssociationHypergraphBuilder, build_association_hypergraph
from repro.core.config import BuildConfig, CONFIG_C1, CONFIG_C2
from repro.data.database import Database
from repro.exceptions import ConfigurationError
from repro.rules.association_table import AssociationTable


def correlated_db(rows: int = 60) -> Database:
    """B mostly follows A; C is close to independent noise."""
    data = []
    for i in range(rows):
        a = (i % 3) + 1
        b = a if i % 5 else ((a % 3) + 1)
        c = ((i * 7) % 3) + 1
        data.append([a, b, c])
    return Database(["A", "B", "C"], data)


class TestBuilderBasics:
    def test_vertices_are_attributes(self):
        hypergraph = build_association_hypergraph(correlated_db(), CONFIG_C1)
        assert hypergraph.vertices == frozenset({"A", "B", "C"})

    def test_rejects_single_attribute_database(self):
        with pytest.raises(ConfigurationError):
            build_association_hypergraph(Database(["A"], [[1], [2]]), CONFIG_C1)

    def test_edge_weights_equal_generic_acv(self):
        """The fast contingency-table ACV matches the reference implementation."""
        db = correlated_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1)
        for edge in hypergraph.edges():
            reference = acv(db, sorted(edge.tail), sorted(edge.head))
            assert edge.weight == pytest.approx(reference)

    def test_payloads_are_association_tables(self):
        hypergraph = build_association_hypergraph(correlated_db(), CONFIG_C1)
        assert hypergraph.num_edges > 0
        for edge in hypergraph.edges():
            assert isinstance(edge.payload, AssociationTable)
            assert edge.payload.acv() == pytest.approx(edge.weight)

    def test_strong_association_included(self):
        hypergraph = build_association_hypergraph(correlated_db(), CONFIG_C1)
        assert hypergraph.has_edge(["A"], ["B"])

    def test_gamma_significance_for_edges(self):
        db = correlated_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1)
        for edge in hypergraph.simple_edges():
            (head,) = edge.head
            assert edge.weight >= CONFIG_C1.gamma_edge * empty_tail_acv(db, head) - 1e-9

    def test_gamma_significance_for_hyperedges(self):
        db = correlated_db()
        hypergraph = build_association_hypergraph(db, CONFIG_C1)
        for edge in hypergraph.two_to_one_edges():
            (head,) = edge.head
            best_single = max(acv(db, [t], [head]) for t in edge.tail)
            assert edge.weight >= CONFIG_C1.gamma_hyperedge * best_single - 1e-9

    def test_include_hyperedges_false(self):
        config = CONFIG_C1.with_overrides(include_hyperedges=False)
        hypergraph = build_association_hypergraph(correlated_db(), config)
        assert hypergraph.two_to_one_edges() == []

    def test_min_acv_floor(self):
        config = CONFIG_C1.with_overrides(min_acv=0.99)
        hypergraph = build_association_hypergraph(correlated_db(), config)
        assert all(edge.weight >= 0.99 for edge in hypergraph.edges())

    def test_max_tail_candidates_limits_pairs(self):
        full = build_association_hypergraph(correlated_db(), CONFIG_C1)
        limited = build_association_hypergraph(
            correlated_db(), CONFIG_C1.with_overrides(max_tail_candidates=1)
        )
        assert len(limited.two_to_one_edges()) <= len(full.two_to_one_edges())


class TestBuildStats:
    def test_stats_populated(self):
        builder = AssociationHypergraphBuilder(CONFIG_C1)
        hypergraph = builder.build(correlated_db())
        stats = builder.last_stats
        assert stats is not None
        assert stats.config_name == "C1"
        assert stats.directed_edges == len(hypergraph.simple_edges())
        assert stats.hyperedges_2to1 == len(hypergraph.two_to_one_edges())
        assert stats.total_edges == hypergraph.num_edges
        assert stats.candidates_examined > 0

    def test_mean_acvs_match_edges(self):
        builder = AssociationHypergraphBuilder(CONFIG_C1)
        hypergraph = builder.build(correlated_db())
        stats = builder.last_stats
        simple = hypergraph.simple_edges()
        if simple:
            assert stats.mean_acv_edges == pytest.approx(
                sum(e.weight for e in simple) / len(simple)
            )


class TestConfig:
    def test_paper_configurations(self):
        assert CONFIG_C1.k == 3 and CONFIG_C1.gamma_edge == 1.15
        assert CONFIG_C2.k == 5 and CONFIG_C2.gamma_hyperedge == 1.12

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(k=1)

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(gamma_edge=0.9)

    def test_invalid_min_acv(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(min_acv=1.5)

    def test_with_overrides(self):
        changed = CONFIG_C1.with_overrides(k=4)
        assert changed.k == 4
        assert changed.gamma_edge == CONFIG_C1.gamma_edge
        assert CONFIG_C1.k == 3  # original untouched


@st.composite
def discrete_database(draw):
    num_rows = draw(st.integers(4, 30))
    k = draw(st.integers(2, 3))
    rows = [
        [draw(st.integers(1, k)) for _ in range(4)]
        for _ in range(num_rows)
    ]
    return Database(["P", "Q", "R", "S"], rows)


class TestBuilderProperties:
    @given(db=discrete_database())
    @settings(max_examples=40, deadline=None)
    def test_all_edge_weights_in_unit_interval(self, db):
        hypergraph = build_association_hypergraph(db, CONFIG_C1)
        assert all(0.0 <= e.weight <= 1.0 + 1e-9 for e in hypergraph.edges())

    @given(db=discrete_database())
    @settings(max_examples=40, deadline=None)
    def test_fast_acv_matches_reference_on_included_edges(self, db):
        hypergraph = build_association_hypergraph(db, CONFIG_C1)
        for edge in hypergraph.edges():
            assert edge.weight == pytest.approx(acv(db, sorted(edge.tail), sorted(edge.head)))

    @given(db=discrete_database())
    @settings(max_examples=40, deadline=None)
    def test_tails_and_heads_respect_model_restriction(self, db):
        """The restricted model only contains |T| <= 2, |H| = 1 hyperedges."""
        hypergraph = build_association_hypergraph(db, CONFIG_C1)
        for edge in hypergraph.edges():
            assert 1 <= edge.tail_size <= 2
            assert edge.head_size == 1
