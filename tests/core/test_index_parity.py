"""Index-vs-reference parity: the array paths must equal the dict paths *exactly*.

The acceptance property of the array-backed query substrate is bit-for-bit
agreement with the reference implementations — same similarity graphs,
same dominator selections, same predictions — over randomized small
databases and over the C1/C2 association hypergraphs of the market
fixture.  Equality is asserted with ``==`` (no tolerance): the similarity
kernels sum with ``math.fsum`` in both paths and the dominator/classifier
paths walk edges in the identical order, so nothing may drift.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import AssociationHypergraphBuilder
from repro.core.classifier import AssociationBasedClassifier
from repro.core.clustering import cluster_attributes
from repro.core.config import CONFIG_C1, CONFIG_C2
from repro.core.dominators import (
    dominator_greedy_cover,
    dominator_set_cover,
    threshold_by_top_fraction,
)
from repro.core.similarity import (
    in_similarity,
    out_similarity,
    pair_similarity_components,
    pairwise_similarity_components,
)
from repro.core.similarity_graph import (
    build_similarity_graph,
    build_similarity_graph_reference,
)
from repro.data.database import Database
from repro.hypergraph.dhg import DirectedHypergraph
from repro.hypergraph.index import HypergraphIndex
from repro.hypergraph.io import load_index_snapshot, save_index_snapshot
from repro.hypergraph.shards import ShardedHypergraphIndex


def _loaded_index(hypergraph):
    """Compile sharded, round-trip through an ``.npz`` snapshot, restitch."""
    import tempfile
    from pathlib import Path

    sharded = ShardedHypergraphIndex.from_hypergraph(hypergraph)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.npz"
        save_index_snapshot(path, sharded, {"model_version": 0})
        _, shards = load_index_snapshot(path, expected_stamp={"model_version": 0})
    return ShardedHypergraphIndex(hypergraph, shards, vertex_order=list(sharded.vertices))


def _recovered_index(hypergraph):
    """Round-trip every shard through a storage *delta* archive (recovery path)."""
    import tempfile
    from pathlib import Path

    from repro.storage import read_delta, write_delta

    sharded = ShardedHypergraphIndex.from_hypergraph(hypergraph)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "delta.npz"
        write_delta(
            path, sharded.shards, sharded.num_vertices, checkpoint_id=1, num_rows=0
        )
        shards = read_delta(path, checkpoint_id=1, num_rows=0)
    return ShardedHypergraphIndex(hypergraph, shards, vertex_order=list(sharded.vertices))


#: The four compiled substrates every parity check must agree across.
INDEX_BUILDERS = {
    "flat": HypergraphIndex.from_hypergraph,
    "sharded": ShardedHypergraphIndex.from_hypergraph,
    "loaded": _loaded_index,
    "recovered": _recovered_index,
}


@st.composite
def random_hypergraph(draw):
    """A small random directed hypergraph (tails up to 3, heads up to 2)."""
    vertices = [f"V{i}" for i in range(draw(st.integers(3, 8)))]
    h = DirectedHypergraph(vertices)
    for _ in range(draw(st.integers(1, 15))):
        tail_size = draw(st.integers(1, min(3, len(vertices) - 1)))
        tail = draw(
            st.lists(
                st.sampled_from(vertices),
                min_size=tail_size,
                max_size=tail_size,
                unique=True,
            )
        )
        head_pool = [v for v in vertices if v not in tail]
        head_size = draw(st.integers(1, min(2, len(head_pool))))
        head = draw(
            st.lists(
                st.sampled_from(head_pool),
                min_size=head_size,
                max_size=head_size,
                unique=True,
            )
        )
        h.add_edge(tail, head, weight=draw(st.floats(0.05, 1.0)))
    return h


@st.composite
def random_database(draw):
    """A small random discretized database (the builder's input shape)."""
    num_attributes = draw(st.integers(3, 5))
    num_rows = draw(st.integers(8, 24))
    attributes = [f"A{i}" for i in range(num_attributes)]
    rows = [
        [draw(st.integers(1, 3)) for _ in attributes] for _ in range(num_rows)
    ]
    return Database(attributes, rows)


class TestSimilarityParity:
    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_pairwise_components_equal_reference(self, h):
        nodes = sorted(h.vertices, key=str)
        _, in_matrix, out_matrix = pairwise_similarity_components(h, nodes)
        for i, a in enumerate(nodes):
            for j, b in enumerate(nodes):
                if i == j:
                    continue
                assert in_matrix[i, j] == in_similarity(h, a, b)
                assert out_matrix[i, j] == out_similarity(h, a, b)

    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_similarity_graph_equals_reference(self, h):
        fast = build_similarity_graph(h)
        reference = build_similarity_graph_reference(h)
        assert fast.nodes == reference.nodes
        assert (fast.distance_matrix() == reference.distance_matrix()).all()

    def test_pair_components_on_market(self, tiny_hypergraph):
        index = HypergraphIndex.from_hypergraph(tiny_hypergraph)
        names = sorted(tiny_hypergraph.vertices, key=str)[:8]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                in_sim, out_sim = pair_similarity_components(index, a, b)
                assert in_sim == in_similarity(tiny_hypergraph, a, b)
                assert out_sim == out_similarity(tiny_hypergraph, a, b)


class TestDominatorParity:
    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_both_algorithms_equal_reference(self, h):
        index = HypergraphIndex.from_hypergraph(h)
        assert dominator_greedy_cover(index) == dominator_greedy_cover(h)
        for enhancement1 in (True, False):
            for enhancement2 in (True, False):
                assert dominator_set_cover(
                    index, enhancement1=enhancement1, enhancement2=enhancement2
                ) == dominator_set_cover(
                    h, enhancement1=enhancement1, enhancement2=enhancement2
                )

    @given(h=random_hypergraph())
    @settings(max_examples=30, deadline=None)
    def test_restricted_target_parity(self, h):
        target = sorted(h.vertices, key=str)[: max(2, len(h.vertices) // 2)]
        index = HypergraphIndex.from_hypergraph(h)
        assert dominator_greedy_cover(index, target=target) == dominator_greedy_cover(
            h, target=target
        )
        assert dominator_set_cover(index, target=target) == dominator_set_cover(
            h, target=target
        )


class TestDatabaseBuiltParity:
    """End-to-end over randomized small databases: build, then query both ways."""

    @given(database=random_database())
    @settings(max_examples=25, deadline=None)
    def test_all_query_layers_agree(self, database):
        config = CONFIG_C1.with_overrides(k=2)
        hypergraph = AssociationHypergraphBuilder(config).build(database)
        index = HypergraphIndex.from_hypergraph(hypergraph)

        fast = build_similarity_graph(index)
        reference = build_similarity_graph_reference(hypergraph)
        assert (fast.distance_matrix() == reference.distance_matrix()).all()

        assert dominator_greedy_cover(index) == dominator_greedy_cover(hypergraph)
        assert dominator_set_cover(index) == dominator_set_cover(hypergraph)

        fast_classifier = AssociationBasedClassifier(index)
        reference_classifier = AssociationBasedClassifier(hypergraph)
        attributes = list(database.attributes)
        evidence = {a: database.row(0)[a] for a in attributes[:2]}
        for target in attributes[2:]:
            assert fast_classifier.predict_attribute(
                target, evidence
            ) == reference_classifier.predict_attribute(target, evidence)


@pytest.mark.parametrize("substrate", sorted(INDEX_BUILDERS), ids=str)
@pytest.mark.parametrize("config", [CONFIG_C1, CONFIG_C2], ids=lambda c: c.name)
class TestMarketConfigParity:
    """Exact parity on the market fixture under both paper configurations.

    Parametrized over every compiled substrate — the flat index, the
    stitched sharded view, a sharded view restored from an ``.npz``
    snapshot, and one recovered through a storage delta archive — all of
    which must agree with the dict-based reference bit for bit.
    """

    def build(self, tiny_market_db, config, substrate):
        hypergraph = AssociationHypergraphBuilder(config).build(tiny_market_db)
        return hypergraph, INDEX_BUILDERS[substrate](hypergraph)

    def test_similarity_graph_and_clustering(self, tiny_market_db, config, substrate):
        hypergraph, index = self.build(tiny_market_db, config, substrate)
        fast = build_similarity_graph(index)
        reference = build_similarity_graph_reference(hypergraph)
        assert fast.nodes == reference.nodes
        assert (fast.distance_matrix() == reference.distance_matrix()).all()
        assert cluster_attributes(fast, t=4) == cluster_attributes(reference, t=4)

    def test_dominators(self, tiny_market_db, config, substrate):
        hypergraph, index = self.build(tiny_market_db, config, substrate)
        assert dominator_greedy_cover(index) == dominator_greedy_cover(hypergraph)
        assert dominator_set_cover(index) == dominator_set_cover(hypergraph)
        for fraction in (0.4, 0.2):
            pruned = threshold_by_top_fraction(hypergraph, fraction)
            pruned_index = INDEX_BUILDERS[substrate](pruned)
            assert dominator_greedy_cover(pruned_index) == dominator_greedy_cover(pruned)
            assert dominator_set_cover(pruned_index) == dominator_set_cover(pruned)

    def test_classifier_predictions_and_evaluation(
        self, tiny_market_db, config, substrate
    ):
        hypergraph, index = self.build(tiny_market_db, config, substrate)
        fast = AssociationBasedClassifier(index)
        reference = AssociationBasedClassifier(hypergraph)
        attributes = list(tiny_market_db.attributes)
        evidence_attrs = attributes[:5]
        row = tiny_market_db.row(0)
        evidence = {a: row[a] for a in evidence_attrs}
        for target in attributes[5:10]:
            assert fast.predict_attribute(target, evidence) == reference.predict_attribute(
                target, evidence
            )
        targets = attributes[5:9]
        # The vectorized evaluate must match the per-observation loop on
        # both substrates, and the substrates must match each other.
        loop = reference.evaluate_reference(tiny_market_db, evidence_attrs, targets)
        assert fast.evaluate(tiny_market_db, evidence_attrs, targets) == loop
        assert fast.evaluate_reference(tiny_market_db, evidence_attrs, targets) == loop
        assert reference.evaluate(tiny_market_db, evidence_attrs, targets) == loop
