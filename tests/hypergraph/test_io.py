"""Round-trip tests for hypergraph serialization."""

from __future__ import annotations

import pytest

from repro.hypergraph.dhg import DirectedHypergraph
from repro.hypergraph.io import (
    hypergraph_from_dict,
    hypergraph_to_dict,
    load_hypergraph,
    save_hypergraph,
)


def make_hypergraph():
    h = DirectedHypergraph(["A", "B", "C", "Isolated"])
    h.add_edge(["A"], ["B"], weight=0.25)
    h.add_edge(["A", "B"], ["C"], weight=0.75)
    return h


class TestDictRoundTrip:
    def test_round_trip_preserves_structure(self):
        original = make_hypergraph()
        rebuilt = hypergraph_from_dict(hypergraph_to_dict(original))
        assert rebuilt.num_vertices == original.num_vertices
        assert rebuilt.num_edges == original.num_edges
        assert rebuilt.get_edge(["A", "B"], ["C"]).weight == pytest.approx(0.75)

    def test_isolated_vertices_survive(self):
        rebuilt = hypergraph_from_dict(hypergraph_to_dict(make_hypergraph()))
        assert rebuilt.has_vertex("Isolated")

    def test_missing_weight_defaults_to_one(self):
        rebuilt = hypergraph_from_dict(
            {"vertices": ["X", "Y"], "edges": [{"tail": ["X"], "head": ["Y"]}]}
        )
        assert rebuilt.get_edge(["X"], ["Y"]).weight == 1.0


class TestPayloadRoundTrip:
    def test_payloads_dropped_without_encoder(self):
        h = DirectedHypergraph()
        h.add_edge(["A"], ["B"], weight=0.5, payload={"secret": 1})
        data = hypergraph_to_dict(h)
        assert "payload" not in data["edges"][0]

    def test_payloads_encoded_and_decoded(self):
        h = DirectedHypergraph()
        h.add_edge(["A"], ["B"], weight=0.5, payload={"rows": [1, 2]})
        h.add_edge(["B"], ["C"], weight=0.25)  # payload None stays None
        data = hypergraph_to_dict(h, payload_encoder=lambda p: {"wrapped": p})
        rebuilt = hypergraph_from_dict(data, payload_decoder=lambda p: p["wrapped"])
        assert rebuilt.get_edge(["A"], ["B"]).payload == {"rows": [1, 2]}
        assert rebuilt.get_edge(["B"], ["C"]).payload is None

    def test_association_table_payload_json_round_trip(self):
        from repro.rules.association_table import AssociationRow, AssociationTable

        table = AssociationTable(
            ("A",), ("B",), (AssociationRow((1,), 0.5, (2,), 0.75),)
        )
        h = DirectedHypergraph()
        h.add_edge(["A"], ["B"], weight=table.acv(), payload=table)
        import json

        data = json.loads(
            json.dumps(hypergraph_to_dict(h, payload_encoder=AssociationTable.to_dict))
        )
        rebuilt = hypergraph_from_dict(data, payload_decoder=AssociationTable.from_dict)
        assert rebuilt.get_edge(["A"], ["B"]).payload == table


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "hypergraph.json"
        save_hypergraph(make_hypergraph(), path)
        loaded = load_hypergraph(path)
        assert loaded.num_edges == 2
        assert loaded.has_edge(["A"], ["B"])
