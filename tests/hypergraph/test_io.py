"""Round-trip tests for hypergraph serialization."""

from __future__ import annotations

import pytest

from repro.hypergraph.dhg import DirectedHypergraph
from repro.hypergraph.io import (
    hypergraph_from_dict,
    hypergraph_to_dict,
    load_hypergraph,
    save_hypergraph,
)


def make_hypergraph():
    h = DirectedHypergraph(["A", "B", "C", "Isolated"])
    h.add_edge(["A"], ["B"], weight=0.25)
    h.add_edge(["A", "B"], ["C"], weight=0.75)
    return h


class TestDictRoundTrip:
    def test_round_trip_preserves_structure(self):
        original = make_hypergraph()
        rebuilt = hypergraph_from_dict(hypergraph_to_dict(original))
        assert rebuilt.num_vertices == original.num_vertices
        assert rebuilt.num_edges == original.num_edges
        assert rebuilt.get_edge(["A", "B"], ["C"]).weight == pytest.approx(0.75)

    def test_isolated_vertices_survive(self):
        rebuilt = hypergraph_from_dict(hypergraph_to_dict(make_hypergraph()))
        assert rebuilt.has_vertex("Isolated")

    def test_missing_weight_defaults_to_one(self):
        rebuilt = hypergraph_from_dict(
            {"vertices": ["X", "Y"], "edges": [{"tail": ["X"], "head": ["Y"]}]}
        )
        assert rebuilt.get_edge(["X"], ["Y"]).weight == 1.0


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "hypergraph.json"
        save_hypergraph(make_hypergraph(), path)
        loaded = load_hypergraph(path)
        assert loaded.num_edges == 2
        assert loaded.has_edge(["A"], ["B"])
