"""Unit tests for directed hyperedges."""

from __future__ import annotations

import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph.edge import DirectedHyperedge


class TestConstruction:
    def test_basic(self):
        edge = DirectedHyperedge(["A", "B"], ["C"], weight=0.7)
        assert edge.tail == frozenset({"A", "B"})
        assert edge.head == frozenset({"C"})
        assert edge.weight == pytest.approx(0.7)

    def test_empty_tail_rejected(self):
        with pytest.raises(HypergraphError):
            DirectedHyperedge([], ["C"])

    def test_empty_head_rejected(self):
        with pytest.raises(HypergraphError):
            DirectedHyperedge(["A"], [])

    def test_overlapping_sets_rejected(self):
        with pytest.raises(HypergraphError):
            DirectedHyperedge(["A", "B"], ["B"])

    def test_duplicate_tail_vertices_collapse(self):
        edge = DirectedHyperedge(["A", "A"], ["B"])
        assert edge.tail_size == 1


class TestViews:
    def test_simple_edge_flag(self):
        assert DirectedHyperedge(["A"], ["B"]).is_simple_edge
        assert not DirectedHyperedge(["A", "B"], ["C"]).is_simple_edge

    def test_two_to_one_flag(self):
        assert DirectedHyperedge(["A", "B"], ["C"]).is_two_to_one
        assert not DirectedHyperedge(["A"], ["B"]).is_two_to_one

    def test_key(self):
        edge = DirectedHyperedge(["A", "B"], ["C"])
        assert edge.key() == (frozenset({"A", "B"}), frozenset({"C"}))

    def test_repr_mentions_weight(self):
        assert "0.5" in repr(DirectedHyperedge(["A"], ["B"], weight=0.5))

    def test_equality_ignores_payload(self):
        a = DirectedHyperedge(["A"], ["B"], weight=0.5, payload={"x": 1})
        b = DirectedHyperedge(["A"], ["B"], weight=0.5, payload={"y": 2})
        assert a == b


class TestRewrites:
    def test_replace_in_tail(self):
        edge = DirectedHyperedge(["A", "B"], ["C"], weight=0.4)
        rewritten = edge.replace_in_tail("A", "D")
        assert rewritten.tail == frozenset({"D", "B"})
        assert rewritten.head == frozenset({"C"})
        assert rewritten.weight == pytest.approx(0.4)

    def test_replace_in_tail_missing_vertex(self):
        with pytest.raises(HypergraphError):
            DirectedHyperedge(["A"], ["C"]).replace_in_tail("Z", "D")

    def test_replace_in_tail_collision_with_head_rejected(self):
        with pytest.raises(HypergraphError):
            DirectedHyperedge(["A"], ["C"]).replace_in_tail("A", "C")

    def test_replace_in_head(self):
        edge = DirectedHyperedge(["A"], ["C"])
        rewritten = edge.replace_in_head("C", "D")
        assert rewritten.head == frozenset({"D"})
        assert rewritten.tail == frozenset({"A"})

    def test_replace_in_head_missing_vertex(self):
        with pytest.raises(HypergraphError):
            DirectedHyperedge(["A"], ["C"]).replace_in_head("Z", "D")
