"""Unit tests for the array-backed hypergraph index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HypergraphError
from repro.hypergraph.dhg import DirectedHypergraph
from repro.hypergraph.index import HypergraphIndex


def small_hypergraph():
    h = DirectedHypergraph(["A", "B", "C", "D"])
    h.add_edge(["A"], ["B"], weight=0.5)
    h.add_edge(["A", "B"], ["C"], weight=0.8)
    h.add_edge(["C"], ["D"], weight=0.3)
    return h


class TestCompilation:
    def test_default_vertex_order_is_string_sorted(self):
        h = DirectedHypergraph(["Z", "M", "A"])
        index = HypergraphIndex.from_hypergraph(h)
        assert index.vertices == ("A", "M", "Z")
        assert index.id_of == {"A": 0, "M": 1, "Z": 2}

    def test_explicit_vertex_order(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h, vertex_order=["D", "C", "B", "A"])
        assert index.vertices == ("D", "C", "B", "A")
        assert index.vertex_id("D") == 0

    def test_vertex_order_must_cover_all_vertices(self):
        with pytest.raises(HypergraphError):
            HypergraphIndex.from_hypergraph(small_hypergraph(), vertex_order=["A", "B"])

    def test_vertex_order_rejects_duplicates(self):
        h = DirectedHypergraph(["A", "B"])
        with pytest.raises(HypergraphError):
            HypergraphIndex.from_hypergraph(h, vertex_order=["A", "B", "A"])

    def test_unknown_vertex_rejected(self):
        index = HypergraphIndex.from_hypergraph(small_hypergraph())
        with pytest.raises(HypergraphError):
            index.vertex_id("nope")
        assert not index.has_vertex("nope")
        assert index.has_vertex("A")

    def test_edge_ids_follow_insertion_order(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        assert index.num_edges == 3
        assert [index.weights[e] for e in range(3)] == [0.5, 0.8, 0.3]
        assert index.edge_keys[1] == (frozenset({"A", "B"}), frozenset({"C"}))

    def test_tail_and_head_slices(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        a, b, c = index.vertex_id("A"), index.vertex_id("B"), index.vertex_id("C")
        assert index.tail_of(1).tolist() == sorted([a, b])
        assert index.head_of(1).tolist() == [c]
        assert index.tail_sizes == frozenset({1, 2})

    def test_adjacency_matches_dict_incidence(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        for vertex in h.vertices:
            vid = index.vertex_id(vertex)
            out_keys = [index.edge_keys[e] for e in index.out_edges_of(vid)]
            assert out_keys == [e.key() for e in h.out_edges(vertex)]
            in_keys = [index.edge_keys[e] for e in index.in_edges_of(vid)]
            assert in_keys == [e.key() for e in h.in_edges(vertex)]

    def test_adjacency_arrays_are_ascending(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        for vid in range(index.num_vertices):
            out = index.out_edges_of(vid)
            assert (np.diff(out) > 0).all() if out.size > 1 else True

    def test_edge_id_lookup(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        a, b, c = (index.vertex_id(v) for v in "ABC")
        assert index.edge_id([b, a], [c]) == 1
        assert index.edge_id([a], [c]) is None

    def test_tail_set_lookup(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        a, b = index.vertex_id("A"), index.vertex_id("B")
        assert index.edge_ids_by_tail[(a,)].tolist() == [0]
        assert index.edge_ids_by_tail[tuple(sorted((a, b)))].tolist() == [1]

    def test_empty_hypergraph(self):
        index = HypergraphIndex.from_hypergraph(DirectedHypergraph(["A", "B"]))
        assert index.num_edges == 0
        assert index.out_edges_of(0).size == 0
        assert len(index) == 0


class TestLiveEdgeReads:
    def test_edge_reads_payload_materialized_after_compile(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        assert index.edge(0).payload is None
        h.update_edge(["A"], ["B"], payload={"table": 1})
        assert index.edge(0).payload == {"table": 1}
        assert index.weights[0] == 0.5  # compiled weight snapshot unchanged

    def test_hypergraph_property_returns_source(self):
        h = small_hypergraph()
        index = HypergraphIndex.from_hypergraph(h)
        assert index.hypergraph is h


class TestApplicableEdges:
    def build(self):
        h = DirectedHypergraph(["A", "B", "C", "T", "X"])
        h.add_edge(["A"], ["T"], weight=0.9)
        h.add_edge(["A", "B"], ["T"], weight=0.8)
        h.add_edge(["C"], ["T"], weight=0.7)
        h.add_edge(["A"], ["X"], weight=0.6)
        h.add_edge(["X"], ["T", "B"], weight=0.5)  # head size 2: never applicable
        return h, HypergraphIndex.from_hypergraph(h)

    def test_matches_manual_filter(self):
        h, index = self.build()
        target = index.vertex_id("T")
        evidence = [index.vertex_id(v) for v in ("A", "B")]
        eids = index.applicable_edges(target, evidence)
        keys = [index.edge_keys[int(e)] for e in eids]
        assert keys == [
            (frozenset({"A"}), frozenset({"T"})),
            (frozenset({"A", "B"}), frozenset({"T"})),
        ]

    def test_lookup_and_scan_strategies_agree(self):
        h, index = self.build()
        target = index.vertex_id("T")
        all_ids = [index.vertex_id(v) for v in ("A", "B", "C", "X")]
        # Large evidence forces the in-adjacency scan; tiny evidence takes
        # the tail-set lookup.  Both must agree with the dict-based filter.
        for evidence in ([all_ids[0]], all_ids):
            got = index.applicable_edges(target, evidence).tolist()
            evidence_names = {index.vertices[i] for i in evidence}
            expected = [
                eid
                for eid, edge in enumerate(h.edges())
                if edge.head == frozenset({"T"}) and edge.tail <= evidence_names
            ]
            assert got == expected

    def test_no_in_edges(self):
        h, index = self.build()
        assert index.applicable_edges(index.vertex_id("A"), []).size == 0
