"""Unit and property tests for the directed hypergraph structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import HypergraphError
from repro.hypergraph.dhg import DirectedHypergraph


def small_hypergraph():
    h = DirectedHypergraph(["A", "B", "C", "D"])
    h.add_edge(["A"], ["B"], weight=0.5)
    h.add_edge(["A", "B"], ["C"], weight=0.8)
    h.add_edge(["C"], ["D"], weight=0.3)
    return h


class TestVertices:
    def test_initial_vertices(self):
        h = DirectedHypergraph(["X", "Y"])
        assert h.num_vertices == 2
        assert h.has_vertex("X")

    def test_add_vertex_idempotent(self):
        h = DirectedHypergraph()
        h.add_vertex("A")
        h.add_vertex("A")
        assert h.num_vertices == 1

    def test_edges_add_vertices(self):
        h = DirectedHypergraph()
        h.add_edge(["A"], ["B"])
        assert h.vertices == frozenset({"A", "B"})

    def test_contains(self):
        assert "A" in small_hypergraph()
        assert "Z" not in small_hypergraph()


class TestEdges:
    def test_counts(self):
        h = small_hypergraph()
        assert h.num_edges == 3
        assert len(h) == 3

    def test_has_and_get_edge(self):
        h = small_hypergraph()
        assert h.has_edge(["B", "A"], ["C"])
        assert h.get_edge(["A", "B"], ["C"]).weight == pytest.approx(0.8)
        assert h.get_edge(["A"], ["D"]) is None

    def test_add_edge_replaces_same_key(self):
        h = small_hypergraph()
        h.add_edge(["A"], ["B"], weight=0.9)
        assert h.num_edges == 3
        assert h.get_edge(["A"], ["B"]).weight == pytest.approx(0.9)

    def test_remove_edge(self):
        h = small_hypergraph()
        h.remove_edge(["A"], ["B"])
        assert h.num_edges == 2
        assert not h.has_edge(["A"], ["B"])
        assert all(e.key() != (frozenset({"A"}), frozenset({"B"})) for e in h.out_edges("A"))

    def test_remove_missing_edge(self):
        with pytest.raises(HypergraphError):
            small_hypergraph().remove_edge(["A"], ["D"])

    def test_simple_and_two_to_one_views(self):
        h = small_hypergraph()
        assert len(h.simple_edges()) == 2
        assert len(h.two_to_one_edges()) == 1

    def test_tail_sets(self):
        assert frozenset({"A", "B"}) in small_hypergraph().tail_sets()


class TestMutation:
    def test_discard_edge_removes_and_reports(self):
        h = small_hypergraph()
        assert h.discard_edge(["A"], ["B"]) is True
        assert not h.has_edge(["A"], ["B"])
        assert h.discard_edge(["A"], ["B"]) is False  # no-raise second time

    def test_discard_edge_unindexes(self):
        h = small_hypergraph()
        h.discard_edge(["A", "B"], ["C"])
        assert all(e.key() != (frozenset({"A", "B"}), frozenset({"C"})) for e in h.out_edges("A"))
        assert h.in_degree("C") == 0

    def test_update_edge_weight_in_place(self):
        h = small_hypergraph()
        updated = h.update_edge(["A"], ["B"], weight=0.9)
        assert updated.weight == pytest.approx(0.9)
        assert h.get_edge(["A"], ["B"]).weight == pytest.approx(0.9)
        # Incidence indices still resolve to the replaced edge object.
        assert h.get_edge(["A"], ["B"]) in h.in_edges("B")

    def test_update_edge_payload_only_keeps_weight(self):
        h = small_hypergraph()
        h.update_edge(["A"], ["B"], payload={"table": 1})
        edge = h.get_edge(["A"], ["B"])
        assert edge.payload == {"table": 1}
        assert edge.weight == pytest.approx(0.5)

    def test_update_edge_omitted_fields_kept(self):
        h = DirectedHypergraph()
        h.add_edge(["A"], ["B"], weight=0.4, payload="keep")
        h.update_edge(["A"], ["B"], weight=0.6)
        assert h.get_edge(["A"], ["B"]).payload == "keep"

    def test_update_missing_edge_raises(self):
        h = small_hypergraph()
        with pytest.raises(HypergraphError):
            h.update_edge(["A"], ["D"], weight=0.1)


class TestIncidence:
    def test_out_edges(self):
        h = small_hypergraph()
        assert {tuple(sorted(e.head)) for e in h.out_edges("A")} == {("B",), ("C",)}
        assert h.out_degree("A") == 2

    def test_in_edges(self):
        h = small_hypergraph()
        assert [e.weight for e in h.in_edges("D")] == [0.3]
        assert h.in_degree("C") == 1

    def test_unknown_vertex_rejected(self):
        with pytest.raises(HypergraphError):
            small_hypergraph().out_edges("Z")

    def test_incidence_returns_tuples_callers_cannot_mutate(self):
        h = small_hypergraph()
        out = h.out_edges("A")
        incoming = h.in_edges("C")
        assert isinstance(out, tuple)
        assert isinstance(incoming, tuple)
        with pytest.raises(AttributeError):
            out.append(None)  # type: ignore[attr-defined]
        # Repeated reads are unaffected by anything done with the result.
        assert h.out_edges("A") == out

    def test_incidence_follows_insertion_order(self):
        h = DirectedHypergraph(["A", "B", "C", "D"])
        h.add_edge(["A"], ["B"], weight=0.1)
        h.add_edge(["A"], ["C"], weight=0.2)
        h.add_edge(["A"], ["D"], weight=0.3)
        assert [e.weight for e in h.out_edges("A")] == [0.1, 0.2, 0.3]
        # Replacing an edge moves it to the end everywhere.
        h.add_edge(["A"], ["B"], weight=0.9)
        assert [e.weight for e in h.out_edges("A")] == [0.2, 0.3, 0.9]
        assert [e.weight for e in h.edges()] == [0.2, 0.3, 0.9]

    def test_edges_are_slotted(self):
        edge = small_hypergraph().get_edge(["A"], ["B"])
        assert not hasattr(edge, "__dict__")
        assert "__slots__" in type(edge).__dict__
        with pytest.raises(AttributeError):  # FrozenInstanceError subclasses it
            edge.weight = 1.0  # type: ignore[misc]


class TestDerivedViews:
    def test_threshold(self):
        pruned = small_hypergraph().threshold(0.5)
        assert pruned.num_edges == 2
        assert pruned.num_vertices == 4  # vertices survive thresholding

    def test_filter_edges(self):
        only_simple = small_hypergraph().filter_edges(lambda e: e.is_simple_edge)
        assert only_simple.num_edges == 2

    def test_subhypergraph(self):
        sub = small_hypergraph().subhypergraph(["A", "B", "C"])
        assert sub.num_edges == 2  # the C->D edge is dropped
        assert sub.num_vertices == 3

    def test_subhypergraph_unknown_vertex(self):
        with pytest.raises(HypergraphError):
            small_hypergraph().subhypergraph(["A", "Z"])

    def test_copy_is_independent(self):
        h = small_hypergraph()
        clone = h.copy()
        clone.add_edge(["D"], ["A"])
        assert clone.num_edges == h.num_edges + 1

    def test_weights(self):
        h = small_hypergraph()
        assert h.total_weight() == pytest.approx(1.6)
        assert h.mean_weight() == pytest.approx(1.6 / 3)

    def test_mean_weight_empty(self):
        assert DirectedHypergraph(["A"]).mean_weight() == 0.0


@st.composite
def hypergraph_edges(draw):
    """Random small hyperedge lists over a fixed vertex pool."""
    vertices = ["V0", "V1", "V2", "V3", "V4", "V5"]
    num_edges = draw(st.integers(0, 12))
    edges = []
    for _ in range(num_edges):
        tail_size = draw(st.integers(1, 2))
        tail = draw(
            st.lists(st.sampled_from(vertices), min_size=tail_size, max_size=tail_size, unique=True)
        )
        head_candidates = [v for v in vertices if v not in tail]
        head = [draw(st.sampled_from(head_candidates))]
        weight = draw(st.floats(0.0, 1.0, allow_nan=False))
        edges.append((tail, head, weight))
    return edges


class TestProperties:
    @given(edges=hypergraph_edges())
    @settings(max_examples=60, deadline=None)
    def test_incidence_indices_consistent(self, edges):
        """Every stored edge appears in the out-index of each tail vertex and the in-index of each head vertex."""
        h = DirectedHypergraph()
        for tail, head, weight in edges:
            h.add_edge(tail, head, weight=weight)
        for edge in h.edges():
            for v in edge.tail:
                assert edge in h.out_edges(v)
            for v in edge.head:
                assert edge in h.in_edges(v)
        # And the indices contain nothing that is not a stored edge.
        all_edges = set(e.key() for e in h.edges())
        for v in h.vertices:
            assert {e.key() for e in h.out_edges(v)} <= all_edges
            assert {e.key() for e in h.in_edges(v)} <= all_edges

    @given(edges=hypergraph_edges(), threshold=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_threshold_keeps_only_heavy_edges(self, edges, threshold):
        h = DirectedHypergraph()
        for tail, head, weight in edges:
            h.add_edge(tail, head, weight=weight)
        pruned = h.threshold(threshold)
        assert all(e.weight >= threshold for e in pruned.edges())
        assert pruned.num_edges == sum(1 for e in h.edges() if e.weight >= threshold)
