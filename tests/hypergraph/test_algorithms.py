"""Tests for degree statistics, reachability, and coverage over directed hypergraphs."""

from __future__ import annotations

import pytest

from repro.hypergraph.algorithms import (
    covered_by,
    degree_distribution,
    forward_reachable,
    to_directed_graph_edges,
    weighted_in_degree,
    weighted_in_degrees,
    weighted_out_degree,
    weighted_out_degrees,
)
from repro.hypergraph.dhg import DirectedHypergraph


def chain_hypergraph():
    """A -> B, {A, B} -> C, C -> D with distinct weights."""
    h = DirectedHypergraph(["A", "B", "C", "D", "E"])
    h.add_edge(["A"], ["B"], weight=0.5)
    h.add_edge(["A", "B"], ["C"], weight=0.8)
    h.add_edge(["C"], ["D"], weight=0.3)
    return h


class TestWeightedDegrees:
    def test_weighted_in_degree(self):
        h = chain_hypergraph()
        assert weighted_in_degree(h, "C") == pytest.approx(0.8)
        assert weighted_in_degree(h, "A") == 0.0

    def test_weighted_out_degree_normalizes_by_tail_size(self):
        h = chain_hypergraph()
        # A contributes 0.5 from A->B and 0.8/2 from {A,B}->C.
        assert weighted_out_degree(h, "A") == pytest.approx(0.5 + 0.4)
        assert weighted_out_degree(h, "B") == pytest.approx(0.4)
        assert weighted_out_degree(h, "E") == 0.0

    def test_degree_maps_cover_all_vertices(self):
        h = chain_hypergraph()
        assert set(weighted_in_degrees(h)) == h.vertices
        assert set(weighted_out_degrees(h)) == h.vertices

    def test_total_out_weight_equals_total_edge_weight(self):
        h = chain_hypergraph()
        assert sum(weighted_out_degrees(h).values()) == pytest.approx(h.total_weight())


class TestDegreeDistribution:
    def test_empty(self):
        assert degree_distribution({}) == []

    def test_single_value(self):
        assert degree_distribution({"A": 1.0, "B": 1.0}) == [(1.0, 1.0, 2)]

    def test_bins_cover_all_nodes(self):
        degrees = {f"N{i}": float(i) for i in range(10)}
        bins = degree_distribution(degrees, num_bins=4)
        assert sum(count for _, _, count in bins) == 10


class TestReachabilityAndCoverage:
    def test_forward_reachable_follows_chains(self):
        h = chain_hypergraph()
        assert forward_reachable(h, ["A"]) == {"A", "B", "C", "D"}

    def test_forward_reachable_requires_full_tail(self):
        h = DirectedHypergraph(["A", "B", "C"])
        h.add_edge(["A", "B"], ["C"])
        assert forward_reachable(h, ["A"]) == {"A"}
        assert forward_reachable(h, ["A", "B"]) == {"A", "B", "C"}

    def test_covered_by_is_one_hop(self):
        h = chain_hypergraph()
        # One hop from {A}: B is covered (tail {A}) but C needs B in the set.
        assert covered_by(h, ["A"]) == {"A", "B"}
        assert covered_by(h, ["A", "B"]) == {"A", "B", "C"}

    def test_covered_by_empty_set(self):
        assert covered_by(chain_hypergraph(), []) == set()


class TestGraphProjection:
    def test_projection_expands_hyperedges(self):
        edges = to_directed_graph_edges(chain_hypergraph())
        assert ("A", "C", 0.8) in edges
        assert ("B", "C", 0.8) in edges
        assert len(edges) == 4
