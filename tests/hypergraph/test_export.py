"""Tests for DOT / edge-list exporters."""

from __future__ import annotations

from repro.core.clustering import cluster_attributes
from repro.core.similarity_graph import SimilarityGraph
from repro.hypergraph.dhg import DirectedHypergraph
from repro.hypergraph.export import (
    clustering_to_dot,
    hypergraph_to_dot,
    similarity_graph_to_edge_list,
    write_text,
)


def sample_hypergraph():
    h = DirectedHypergraph(["A", "B", "C", "D"])
    h.add_edge(["A"], ["B"], weight=0.9)
    h.add_edge(["A", "B"], ["C"], weight=0.7)
    h.add_edge(["C"], ["D"], weight=0.2)
    return h


class TestHypergraphToDot:
    def test_contains_all_vertices_and_edges(self):
        dot = hypergraph_to_dot(sample_hypergraph())
        assert dot.startswith("digraph")
        for vertex in ("A", "B", "C", "D"):
            assert f'"{vertex}"' in dot
        assert '"A" -> "B"' in dot
        # The 2-to-1 hyperedge goes through a junction node.
        assert "__he" in dot

    def test_min_weight_filters_edges(self):
        dot = hypergraph_to_dot(sample_hypergraph(), min_weight=0.5)
        assert '"C" -> "D"' not in dot
        assert '"A" -> "B"' in dot

    def test_max_edges_keeps_heaviest(self):
        dot = hypergraph_to_dot(sample_hypergraph(), max_edges=1)
        assert '"A" -> "B"' in dot
        assert "__he" not in dot

    def test_quotes_special_characters(self):
        h = DirectedHypergraph(['we"ird', "ok"])
        h.add_edge(['we"ird'], ["ok"], weight=0.5)
        dot = hypergraph_to_dot(h)
        assert r"\"" in dot


class TestSimilarityGraphExport:
    def make_graph(self):
        graph = SimilarityGraph(["A", "B", "C"])
        graph.set_distance("A", "B", 0.2)
        graph.set_distance("A", "C", 0.9)
        graph.set_distance("B", "C", 0.4)
        return graph

    def test_edge_list_contains_all_pairs(self):
        text = similarity_graph_to_edge_list(self.make_graph())
        assert len(text.splitlines()) == 3
        assert "A B 0.2000" in text

    def test_max_distance_filters(self):
        text = similarity_graph_to_edge_list(self.make_graph(), max_distance=0.5)
        assert len(text.splitlines()) == 2
        assert "0.9000" not in text


class TestClusteringToDot:
    def test_clusters_rendered_with_sectors(self):
        graph = self.two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        dot = clustering_to_dot(
            clustering, sector_of={"A": "S1", "B": "S1", "X": "S2", "Y": "S2"}
        )
        assert dot.startswith("graph")
        assert "fillcolor" in dot
        assert '"A" -- "B"' in dot or '"B" -- "A"' in dot
        # Centers are interconnected with dashed edges.
        assert "style=dashed" in dot

    def test_clusters_render_without_sectors(self):
        graph = self.two_blob_graph()
        clustering = cluster_attributes(graph, t=2, first_center="A")
        dot = clustering_to_dot(clustering)
        assert "fillcolor" not in dot

    @staticmethod
    def two_blob_graph():
        nodes = ["A", "B", "X", "Y"]
        graph = SimilarityGraph(nodes)
        for i, first in enumerate(nodes):
            for second in nodes[i + 1 :]:
                same = (first in "AB") == (second in "AB")
                graph.set_distance(first, second, 0.1 if same else 0.9)
        return graph


class TestWriteText:
    def test_writes_with_trailing_newline(self, tmp_path):
        path = write_text("hello", tmp_path / "out.dot")
        assert path.read_text() == "hello\n"

    def test_does_not_duplicate_newline(self, tmp_path):
        path = write_text("hello\n", tmp_path / "out.dot")
        assert path.read_text() == "hello\n"
