"""Sharded index: stitching invariants, query parity, snapshot round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import AssociationBasedClassifier
from repro.core.dominators import dominator_greedy_cover, dominator_set_cover
from repro.core.similarity_graph import build_similarity_graph
from repro.exceptions import SnapshotVersionError
from repro.hypergraph.dhg import DirectedHypergraph
from repro.hypergraph.index import HypergraphIndex
from repro.hypergraph.io import (
    INDEX_SNAPSHOT_FORMAT,
    load_index_snapshot,
    save_index_snapshot,
)
from repro.hypergraph.shards import ShardedHypergraphIndex


@st.composite
def random_hypergraph(draw):
    """Small random hypergraphs, multi-vertex heads included."""
    vertices = [f"V{i}" for i in range(draw(st.integers(3, 8)))]
    h = DirectedHypergraph(vertices)
    for _ in range(draw(st.integers(1, 15))):
        tail_size = draw(st.integers(1, min(3, len(vertices) - 1)))
        tail = draw(
            st.lists(
                st.sampled_from(vertices),
                min_size=tail_size,
                max_size=tail_size,
                unique=True,
            )
        )
        head_pool = [v for v in vertices if v not in tail]
        head_size = draw(st.integers(1, min(2, len(head_pool))))
        head = draw(
            st.lists(
                st.sampled_from(head_pool),
                min_size=head_size,
                max_size=head_size,
                unique=True,
            )
        )
        h.add_edge(tail, head, weight=draw(st.floats(0.05, 1.0)))
    return h


def example_hypergraph() -> DirectedHypergraph:
    h = DirectedHypergraph(["A", "B", "C", "D", "E"])
    h.add_edge(["A"], ["B"], weight=0.9)
    h.add_edge(["A", "C"], ["B"], weight=0.7)
    h.add_edge(["B"], ["C"], weight=0.6)
    h.add_edge(["C"], ["D"], weight=0.5)
    h.add_edge(["A"], ["C", "D"], weight=0.4)  # multi-head: owned by min head id
    return h


class TestStitching:
    def test_edges_partition_by_head(self):
        h = example_hypergraph()
        index = ShardedHypergraphIndex.from_hypergraph(h)
        assert index.num_edges == h.num_edges
        assert sum(shard.num_edges for shard in index.shards) == h.num_edges
        # Every edge's owning shard keys on the smallest head vertex id.
        for eid in range(index.num_edges):
            shard = index.shard_of_edge(eid)
            assert int(index.head_of(eid).min()) == shard.head_vertex

    def test_multi_head_edge_owned_by_min_head(self):
        h = example_hypergraph()
        index = ShardedHypergraphIndex.from_hypergraph(h)
        c_id = index.vertex_id("C")
        shard = index.shard_for_head(c_id)
        # The (A -> {C, D}) edge lives in C's shard (min head id), and D
        # has no shard of its own (its only in-edges are owned elsewhere).
        keys = {
            (tail, head)
            for tail, head in zip(shard.tail_keys, shard.head_keys)
        }
        a_id, d_id = index.vertex_id("A"), index.vertex_id("D")
        assert ((a_id,), tuple(sorted((c_id, d_id)))) in keys

    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_stitched_surface_matches_flat_index(self, h):
        """Per-edge-key arrays and lookups agree with the unsharded compile."""
        flat = HypergraphIndex.from_hypergraph(h)
        sharded = ShardedHypergraphIndex.from_hypergraph(h)
        assert sharded.vertices == flat.vertices
        assert sharded.id_of == flat.id_of
        assert sharded.num_edges == flat.num_edges
        assert sharded.tail_sizes == flat.tail_sizes

        # Same edges, same weights, same tail/head sets — keyed, since the
        # global id numbering legitimately differs.
        flat_by_key = {flat.edge_keys[e]: e for e in range(flat.num_edges)}
        assert set(sharded.edge_keys) == set(flat_by_key)
        for eid, key in enumerate(sharded.edge_keys):
            fid = flat_by_key[key]
            assert sharded.weights[eid] == flat.weights[fid]
            assert sharded.tail_of(eid).tolist() == flat.tail_of(fid).tolist()
            assert sharded.head_of(eid).tolist() == flat.head_of(fid).tolist()

        # Adjacency maps to the same edge keys per vertex (ids differ).
        for vid in range(flat.num_vertices):
            for sharded_ids, flat_ids in (
                (sharded.out_edges_of(vid), flat.out_edges_of(vid)),
                (sharded.in_edges_of(vid), flat.in_edges_of(vid)),
            ):
                assert {sharded.edge_keys[int(e)] for e in sharded_ids} == {
                    flat.edge_keys[int(e)] for e in flat_ids
                }

        # Tail-set lookup and exact edge-id resolution agree modulo keys.
        assert set(sharded.edge_ids_by_tail) == set(flat.edge_ids_by_tail)
        for eid, key in enumerate(sharded.edge_keys):
            tail = sharded.tail_of(eid).tolist()
            head = sharded.head_of(eid).tolist()
            assert sharded.edge_id(tail, head) == eid
            assert sharded.edge(eid).key() == key

    @given(h=random_hypergraph())
    @settings(max_examples=40, deadline=None)
    def test_query_layers_bit_identical(self, h):
        flat = HypergraphIndex.from_hypergraph(h)
        sharded = ShardedHypergraphIndex.from_hypergraph(h)

        fast = build_similarity_graph(sharded)
        reference = build_similarity_graph(flat)
        assert (fast.distance_matrix() == reference.distance_matrix()).all()

        assert dominator_greedy_cover(sharded) == dominator_greedy_cover(flat)
        assert dominator_set_cover(sharded) == dominator_set_cover(flat)

        vertices = sorted(h.vertices, key=str)
        evidence = {v: 1 for v in vertices[: max(1, len(vertices) // 2)]}
        flat_clf = AssociationBasedClassifier(flat)
        sharded_clf = AssociationBasedClassifier(sharded)
        for target in vertices:
            if target in evidence:
                continue
            assert sharded_clf.predict_attribute(
                target, evidence
            ) == flat_clf.predict_attribute(target, evidence)

    def test_empty_hypergraph(self):
        h = DirectedHypergraph(["A", "B"])
        index = ShardedHypergraphIndex.from_hypergraph(h)
        assert index.num_edges == 0
        assert index.shards == ()
        assert index.out_edges_of(0).size == 0
        assert dominator_set_cover(index).dominators == ()


class TestSnapshotRoundTrip:
    def build(self):
        h = example_hypergraph()
        return h, ShardedHypergraphIndex.from_hypergraph(h)

    def test_round_trip_preserves_every_query(self, tmp_path):
        h, index = self.build()
        path = tmp_path / "index.npz"
        stamp = {"model_version": 7, "num_edges": h.num_edges}
        save_index_snapshot(path, index, stamp)

        loaded_stamp, shards = load_index_snapshot(path, expected_stamp=stamp)
        assert loaded_stamp == stamp
        loaded = ShardedHypergraphIndex(h, shards, vertex_order=list(index.vertices))
        assert loaded.num_edges == index.num_edges
        assert (
            build_similarity_graph(loaded).distance_matrix()
            == build_similarity_graph(index).distance_matrix()
        ).all()
        assert dominator_set_cover(loaded) == dominator_set_cover(index)
        assert dominator_greedy_cover(loaded) == dominator_greedy_cover(index)
        for eid in range(index.num_edges):
            assert loaded.edge_keys[eid] == index.edge_keys[eid]
            assert loaded.weights[eid] == index.weights[eid]

    def test_loaded_shard_lookups_hydrate_lazily(self, tmp_path):
        h, index = self.build()
        path = tmp_path / "index.npz"
        save_index_snapshot(path, index, {"model_version": 0})
        _, shards = load_index_snapshot(path)
        for shard in shards:
            assert shard._edge_id_of is None  # not yet hydrated
        loaded = ShardedHypergraphIndex(h, shards)
        eid = loaded.edge_id(
            [loaded.vertex_id("A")], [loaded.vertex_id("B")]
        )
        assert eid is not None

    def test_first_classify_hydrates_only_target_shard(self, tmp_path):
        """Cold-snapshot classification touches one shard's keys, not all."""
        h, index = self.build()
        path = tmp_path / "index.npz"
        save_index_snapshot(path, index, {"model_version": 0})
        _, shards = load_index_snapshot(path)
        loaded = ShardedHypergraphIndex(h, shards)

        target_id = loaded.vertex_id("B")
        evidence_ids = [loaded.vertex_id("A"), loaded.vertex_id("C")]
        for eid in loaded.applicable_edges(target_id, evidence_ids):
            edge = loaded.edge(int(eid))
            assert "B" in edge.head

        target_shard = loaded.shard_for_head(target_id)
        assert target_shard._edge_keys is not None
        for shard in loaded.shards:
            if shard is not target_shard:
                assert shard._edge_keys is None
                assert shard._tail_keys is None
        # The merged global surfaces stayed cold too.
        assert loaded._lazy_edge_keys is None
        assert loaded._lazy_edge_ids_by_tail is None

    def test_edge_resolution_matches_base_class_path(self):
        h, index = self.build()
        flat = HypergraphIndex.from_hypergraph(h, vertex_order=list(index.vertices))
        key_of = {key: eid for eid, key in enumerate(flat.edge_keys)}
        for eid in range(index.num_edges):
            edge = index.edge(eid)
            assert edge is flat.edge(key_of[index.edge_keys[eid]])

    def test_mismatched_stamp_is_refused(self, tmp_path):
        h, index = self.build()
        path = tmp_path / "index.npz"
        save_index_snapshot(path, index, {"model_version": 7, "num_edges": h.num_edges})
        with pytest.raises(SnapshotVersionError, match="model_version"):
            load_index_snapshot(
                path, expected_stamp={"model_version": 8, "num_edges": h.num_edges}
            )
        # A stamp field missing on either side is a mismatch, not a pass.
        with pytest.raises(SnapshotVersionError, match="num_rows"):
            load_index_snapshot(
                path,
                expected_stamp={
                    "model_version": 7,
                    "num_edges": h.num_edges,
                    "num_rows": 4,
                },
            )

    def test_non_snapshot_file_is_refused(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, payload=np.arange(3))
        with pytest.raises(SnapshotVersionError, match=INDEX_SNAPSHOT_FORMAT.split("/")[0]):
            load_index_snapshot(path)


class TestIndexShard:
    def test_compile_preserves_edge_order(self):
        h = example_hypergraph()
        index = ShardedHypergraphIndex.from_hypergraph(h)
        b_id = index.vertex_id("B")
        shard = index.shard_for_head(b_id)
        # Local ids follow hypergraph insertion order restricted to the head.
        expected = [
            edge.key() for edge in h.in_edges("B") if min(
                index.vertex_id(v) for v in edge.head
            ) == b_id
        ]
        base = index.shard_base[b_id]
        got = [index.edge_keys[base + lid] for lid in range(shard.num_edges)]
        assert got == expected

    def test_shard_tail_lookup(self):
        h = example_hypergraph()
        index = ShardedHypergraphIndex.from_hypergraph(h)
        b_id = index.vertex_id("B")
        shard = index.shard_for_head(b_id)
        a_id, c_id = index.vertex_id("A"), index.vertex_id("C")
        assert set(shard.edge_ids_by_tail) == {(a_id,), tuple(sorted((a_id, c_id)))}
        assert shard.tail_sizes == frozenset({1, 2})
