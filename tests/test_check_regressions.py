"""Unit tests for the benchmark regression gate's direction logic.

``benchmarks/check_regressions.py`` is a script outside the package, so
it is loaded here via importlib.  The claims under test: ratio metrics
fail *below* their bound (higher is better), latency percentiles fail
*above* theirs (lower is better), ``_skipped`` waivers work in both
directions, and the declarative gate configs (``max_ratio`` /
``hard_ceilings``) bind.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regressions.py"
)
_spec = importlib.util.spec_from_file_location("check_regressions", _SCRIPT)
check_regressions = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regressions)


@pytest.fixture()
def dirs(tmp_path):
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    baseline_dir.mkdir()
    current_dir.mkdir()
    return baseline_dir, current_dir


def write(directory: Path, name: str, document: dict) -> Path:
    path = directory / name
    path.write_text(json.dumps(document))
    return path


def run_check(dirs, baseline, current, name="BENCH_x.json", **kwargs):
    baseline_dir, current_dir = dirs
    return check_regressions.check_file(
        write(baseline_dir, name, baseline),
        write(current_dir, name, current),
        tolerance=0.35,
        **kwargs,
    )


# --------------------------------------------------------------- percentile keys
@pytest.mark.parametrize(
    "key", ["p50", "p99", "p999", "p50_ms", "p99_ms", "latency_p999"]
)
def test_percentile_key_detection_positive(key):
    assert check_regressions.PERCENTILE_KEY.search(key)


@pytest.mark.parametrize(
    "key", ["speedup", "p100", "per_pair_s", "pp99", "p999x", "append_s"]
)
def test_percentile_key_detection_negative(key):
    assert not check_regressions.PERCENTILE_KEY.search(key)


# --------------------------------------------------------------- direction logic
def test_latency_rise_beyond_tolerance_fails(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 25.0}},
        latency_tolerance=1.0,
    )
    assert failures and "above" in failures[0]


def test_latency_within_tolerance_passes(dirs):
    failures, lines = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 19.0}},
        latency_tolerance=1.0,
    )
    assert not failures
    assert any("[ok]" in line for line in lines)


def test_latency_improvement_never_fails(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 0.1}},
        latency_tolerance=0.0,
    )
    assert not failures


def test_ratio_metric_still_fails_below_its_bound(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"speedup": 10.0}},
        {"sec": {"speedup": 1.0}},
    )
    assert failures and "below" in failures[0]


def test_disappeared_latency_metric_fails(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"other": 1.0}},
    )
    assert failures and "disappeared" in failures[0]


def test_plain_metrics_stay_informational(dirs):
    failures, lines = run_check(
        dirs,
        {"sec": {"append_s": 1.0}},
        {"sec": {"append_s": 99.0}},
    )
    assert not failures
    assert any("[info]" in line for line in lines)


# --------------------------------------------------------------- skip waivers
def test_skipped_current_section_waives_latency_gate(dirs):
    failures, lines = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"_skipped": 1}},
        latency_tolerance=0.0,
    )
    assert not failures
    assert any("[skipped]" in line for line in lines)


def test_skipped_baseline_section_still_gates_current_ceilings(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"_skipped": 1}},
        {"sec": {"error_rate": 0.5}},
        gates={"hard_ceilings": {"sec.error_rate": 0.0}},
    )
    assert failures and "ceiling" in failures[0]


# --------------------------------------------------------------- gate configs
def test_max_ratio_overrides_latency_tolerance(dirs):
    gates = {"max_ratio": {"sec.p99_ms": 1.5}}
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 16.0}},
        latency_tolerance=5.0,
        gates=gates,
    )
    assert failures and "max_ratio" in failures[0]


def test_gate_config_latency_tolerance_overrides_global(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 12.0}},
        latency_tolerance=5.0,
        gates={"latency_tolerance": 0.1},
    )
    assert failures


def test_hard_ceiling_holds_without_baseline_entry(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 10.0, "error_rate": 0.25}},
        gates={"hard_ceilings": {"sec.error_rate": 0.0}},
    )
    assert failures and "hard" in failures[0] and "ceiling" in failures[0]


def test_hard_ceiling_at_zero_passes_clean_run(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 10.0, "error_rate": 0.0}},
        gates={"hard_ceilings": {"sec.error_rate": 0.0}},
    )
    assert not failures


def test_absent_ceiling_metric_fails(dirs):
    failures, _ = run_check(
        dirs,
        {"sec": {"p99_ms": 10.0}},
        {"sec": {"p99_ms": 10.0}},
        gates={"hard_ceilings": {"sec.error_rate": 0.0}},
    )
    assert failures and "absent" in failures[0]


def test_load_gates_indexes_by_target_file(tmp_path):
    write(
        tmp_path,
        "gates_example.json",
        {"file": "BENCH_example.json", "hard_ceilings": {"a.b": 1.0}},
    )
    gates = check_regressions.load_gates(tmp_path)
    assert set(gates) == {"BENCH_example.json"}
    assert gates["BENCH_example.json"]["hard_ceilings"] == {"a.b": 1.0}


# --------------------------------------------------------------- main() / --only
def test_main_only_filters_to_one_file(dirs, tmp_path, capsys, monkeypatch):
    baseline_dir, current_dir = dirs
    write(baseline_dir, "BENCH_a.json", {"sec": {"speedup": 1.0}})
    write(baseline_dir, "BENCH_b.json", {"sec": {"speedup": 1.0}})
    write(current_dir, "BENCH_a.json", {"sec": {"speedup": 1.0}})
    # BENCH_b.json is missing from current: gating it would fail, so the
    # --only filter passing proves the filter actually applied.
    exit_code = check_regressions.main(
        [
            "--baseline-dir",
            str(baseline_dir),
            "--current-dir",
            str(current_dir),
            "--gates-dir",
            str(tmp_path / "nowhere"),
            "--only",
            "BENCH_a.json",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "BENCH_a.json" in out
    assert "BENCH_b.json" not in out


def test_main_unknown_only_is_an_error(dirs, capsys):
    baseline_dir, current_dir = dirs
    write(baseline_dir, "BENCH_a.json", {"sec": {"speedup": 1.0}})
    exit_code = check_regressions.main(
        [
            "--baseline-dir",
            str(baseline_dir),
            "--current-dir",
            str(current_dir),
            "--only",
            "BENCH_zzz.json",
        ]
    )
    assert exit_code == 2
