"""Parallel shard compiles: identical results, identical counters.

Shards compile independently by construction, so an engine with
``compile_workers > 1`` must produce bit-identical compiled arrays and the
same compile counters as a serial engine — the thread pool is purely a
wall-clock lever.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BuildConfig
from repro.data.database import Database
from repro.engine import AssociationEngine

CONFIG = BuildConfig(
    name="parallel-test",
    k=3,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.5,
    include_hyperedges=False,
)


def grouped_database(num_groups=4, group_size=3, num_rows=60):
    rng = np.random.default_rng(3)
    columns: dict[str, list[int]] = {}
    for g in range(num_groups):
        base = rng.integers(0, 3, num_rows)
        for m in range(group_size):
            columns[f"G{g}M{m}"] = base.tolist()
    attributes = list(columns)
    rows = [[columns[a][r] for a in attributes] for r in range(num_rows)]
    return Database(attributes, rows)


def assert_indexes_identical(first, second):
    assert first.num_edges == second.num_edges
    assert (first.weights == second.weights).all()
    assert (first.tail_ids == second.tail_ids).all()
    assert (first.tail_offsets == second.tail_offsets).all()
    assert (first.head_ids == second.head_ids).all()
    assert (first.head_offsets == second.head_offsets).all()
    assert first.edge_keys == second.edge_keys


class TestParallelCompile:
    def test_threaded_full_build_matches_serial(self):
        database = grouped_database()
        serial = AssociationEngine.from_database(database, CONFIG)
        threaded = AssociationEngine.from_database(
            database, CONFIG, compile_workers=4
        )
        assert_indexes_identical(serial.index, threaded.index)
        assert serial.counters.full_compiles == threaded.counters.full_compiles == 1
        assert serial.counters.shard_compiles == threaded.counters.shard_compiles == 0

    def test_threaded_dirty_head_rebuild_matches_serial(self):
        database = grouped_database()
        serial = AssociationEngine.from_database(database, CONFIG)
        threaded = AssociationEngine.from_database(
            database, CONFIG, compile_workers=4
        )
        serial.index, threaded.index  # initial full compile on both

        extra = [[(v + 1) % 3 for v in row] for row in database.to_rows()[:10]]
        for engine in (serial, threaded):
            engine.append_rows(extra)
        assert_indexes_identical(serial.index, threaded.index)
        assert serial.counters.shard_compiles == threaded.counters.shard_compiles
        assert serial.counters.full_compiles == threaded.counters.full_compiles

        a, b = serial.attributes[0], serial.attributes[-1]
        assert serial.similarity(a, b) == threaded.similarity(a, b)
        assert serial.dominators() == threaded.dominators()

    def test_workers_knob_is_mutable_at_runtime(self):
        database = grouped_database()
        engine = AssociationEngine.from_database(database, CONFIG)
        baseline = engine.index
        engine.compile_workers = 8
        engine.append_rows([[(v + 1) % 3 for v in database.to_rows()[0]]])
        threaded_index = engine.index  # rebuilt (partially) under the pool
        assert threaded_index.num_edges >= 0
        assert engine.compile_workers == 8
        # Still bit-identical to a from-scratch serial engine on the same rows.
        twin = AssociationEngine.from_database(
            engine._store.to_database(), CONFIG
        )
        assert_indexes_identical(engine.index, twin.index)
