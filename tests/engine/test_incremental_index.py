"""Incremental shard recompilation, per-shard cache stamps, and sidecars.

The acceptance properties of the sharded engine index:

* a refresh recompiles exactly the shards of heads whose hyperedges
  changed (counter-asserted) — an append constructed to dirty one of many
  heads rebuilds one shard, not the index;
* queries that only touch clean heads keep serving from cache across such
  appends;
* every query result stays exactly equal (``==``) to a fresh full
  compile of the maintained hypergraph, whatever the interleaving of
  appends, refreshes, and queries;
* ``save``/``load`` round-trips through the ``.npz`` sidecar serve the
  first query without a single shard compile, and stale sidecars raise
  :class:`SnapshotVersionError`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import AssociationBasedClassifier
from repro.core.config import BuildConfig, CONFIG_C1
from repro.core.dominators import dominator_greedy_cover, dominator_set_cover
from repro.core.similarity import combined_similarity
from repro.core.similarity_graph import build_similarity_graph
from repro.data.database import Database
from repro.engine import AssociationEngine
from repro.exceptions import SnapshotVersionError
from repro.hypergraph.index import HypergraphIndex

#: Single-tail-only configuration for the single-dirty-head construction:
#: ``min_acv`` filters the independent noise pairs, so the only edges are
#: within the planted copy-pairs plus the planted X -> P association.
SINGLE_HEAD_CONFIG = BuildConfig(
    name="shard-test",
    k=3,
    gamma_edge=1.0,
    gamma_hyperedge=1.2,
    min_acv=0.5,
    include_hyperedges=False,
)


def planted_market(num_pairs: int = 5, num_rows: int = 400, seed: int = 5):
    """A database where appends can dirty exactly one head attribute.

    ``X`` (six values) determines ``P = X mod 2`` — significant only in the
    ``X -> P`` direction under :data:`SINGLE_HEAD_CONFIG` (the reverse ACV
    of ~1/3 falls below ``min_acv``).  Each ``(A_i, B_i)`` pair is an exact
    copy, giving every other head strong edges.  Appending an exact
    duplicate of the rows with the ``X`` column permuted doubles every
    contingency count except those involving ``X``: every clean head's
    ACVs land on bit-identical weights while ``P``'s in-edge changes.
    """
    rng = np.random.default_rng(seed)
    columns: dict[str, list[int]] = {}
    x = rng.integers(0, 6, num_rows)
    columns["X"] = x.tolist()
    columns["P"] = (x % 2).tolist()
    for i in range(num_pairs):
        a = rng.integers(0, 3, num_rows)
        columns[f"A{i}"] = a.tolist()
        columns[f"B{i}"] = a.tolist()
    attributes = list(columns)
    rows = [[columns[a][r] for a in attributes] for r in range(num_rows)]
    permutation = rng.permutation(num_rows)
    dirty_rows = [
        [
            columns[a][permutation[r]] if a == "X" else columns[a][r]
            for a in attributes
        ]
        for r in range(num_rows)
    ]
    return Database(attributes, rows), dirty_rows


def assert_queries_equal_fresh_compile(engine: AssociationEngine) -> None:
    """Every query layer on the engine == a fresh full compile of its graph."""
    index = engine.index
    fresh = HypergraphIndex.from_hypergraph(
        engine.hypergraph, vertex_order=engine.attributes
    )
    assert (
        build_similarity_graph(index).distance_matrix()
        == build_similarity_graph(fresh).distance_matrix()
    ).all()
    assert dominator_set_cover(index) == dominator_set_cover(fresh)
    assert dominator_greedy_cover(index) == dominator_greedy_cover(fresh)
    attributes = engine.attributes
    evidence = {attributes[0]: 1, attributes[1]: 0}
    targets = [a for a in attributes if a not in evidence]
    fresh_classifier = AssociationBasedClassifier(fresh)
    engine_predictions = engine.classify(evidence, targets=targets)
    for target in targets:
        assert engine_predictions[target] == fresh_classifier.predict_attribute(
            target, evidence
        )


class TestSingleDirtyHead:
    @pytest.fixture(scope="class")
    def scenario(self):
        return planted_market()

    def test_append_dirties_exactly_one_shard(self, scenario):
        database, dirty_rows = scenario
        engine = AssociationEngine.from_database(database, SINGLE_HEAD_CONFIG)
        engine.index  # initial full compile
        before = engine.counters
        assert before.full_compiles == 1
        assert before.shard_compiles == 0
        assert len(engine.head_attributes) >= 8

        vector_before = engine.index_version_vector
        engine.append_rows(dirty_rows)
        engine.refresh()
        assert engine._dirty_shards == {"P"}
        engine.index
        after = engine.counters
        assert after.shard_compiles == before.shard_compiles + 1
        assert after.full_compiles == before.full_compiles
        # Exactly one component of the per-shard version vector moved.
        vector_after = engine.index_version_vector
        changed = [
            head
            for head, b, a in zip(
                engine.head_attributes, vector_before, vector_after
            )
            if a != b
        ]
        assert changed == ["P"]

    def test_clean_head_query_served_from_cache(self, scenario):
        database, dirty_rows = scenario
        engine = AssociationEngine.from_database(database, SINGLE_HEAD_CONFIG)
        cached = engine.similarity("A0", "B0")
        engine.append_rows(dirty_rows)
        engine.refresh()
        stats_before = engine.cache_stats
        again = engine.similarity("A0", "B0")
        stats_after = engine.cache_stats
        assert stats_after.hits == stats_before.hits + 1
        assert stats_after.misses == stats_before.misses
        assert again == cached
        assert again == combined_similarity(engine.hypergraph, "A0", "B0")

    def test_dirty_pair_similarity_recomputes(self, scenario):
        database, dirty_rows = scenario
        engine = AssociationEngine.from_database(database, SINGLE_HEAD_CONFIG)
        engine.similarity("X", "P")
        engine.append_rows(dirty_rows)
        before = engine.cache_stats
        engine.similarity("X", "P")
        after = engine.cache_stats
        assert after.misses == before.misses + 1
        assert after.version_misses == before.version_misses + 1
        assert engine.similarity("X", "P") == combined_similarity(
            engine.hypergraph, "X", "P"
        )

    def test_results_equal_fresh_compile_after_incremental_refresh(self, scenario):
        database, dirty_rows = scenario
        engine = AssociationEngine.from_database(database, SINGLE_HEAD_CONFIG)
        engine.index
        engine.append_rows(dirty_rows)
        engine.refresh()
        assert_queries_equal_fresh_compile(engine)
        # The incremental path really did skip the clean shards.
        assert engine.counters.shard_compiles == 1
        assert engine.counters.full_compiles == 1


@st.composite
def interleaving(draw):
    """A random schedule of appends, refreshes, and queries."""
    num_attributes = draw(st.integers(4, 6))
    num_rows = draw(st.integers(10, 30))
    attributes = [f"A{i}" for i in range(num_attributes)]
    rows = [
        [draw(st.integers(1, 3)) for _ in attributes] for _ in range(num_rows)
    ]
    operations = draw(
        st.lists(
            st.sampled_from(
                ["append", "refresh", "similarity", "dominators", "classify", "index"]
            ),
            min_size=3,
            max_size=9,
        )
    )
    return attributes, rows, operations


class TestInterleavedParity:
    @given(plan=interleaving())
    @settings(max_examples=25, deadline=None)
    def test_interleavings_preserve_exact_parity(self, plan):
        attributes, rows, operations = plan
        config = CONFIG_C1.with_overrides(k=2)
        engine = AssociationEngine(attributes, config)
        cursor = 0
        chunk = max(1, len(rows) // 4)
        for operation in operations:
            if operation == "append" and cursor < len(rows):
                engine.append_rows(rows[cursor : cursor + chunk])
                cursor += chunk
            elif operation == "refresh":
                engine.refresh()
            elif operation == "similarity":
                engine.similarity(attributes[0], attributes[1])
            elif operation == "dominators":
                engine.dominators()
            elif operation == "classify":
                engine.classify({attributes[0]: 1}, targets=[attributes[-1]])
            elif operation == "index":
                engine.index
        if cursor == 0:
            engine.append_rows(rows[:chunk])
            cursor = chunk
        assert_queries_equal_fresh_compile(engine)

        # The maintained model equals a from-scratch engine on the same rows
        # on every order-independent query layer.
        fresh_engine = AssociationEngine.from_database(
            Database(attributes, rows[:cursor]), config
        )
        a, b = attributes[0], attributes[1]
        assert engine.similarity(a, b) == fresh_engine.similarity(a, b)
        assert engine.dominators() == fresh_engine.dominators()
        assert engine.clusters(t=2) == fresh_engine.clusters(t=2)


class TestSidecarSnapshots:
    def build_engine(self):
        database, _ = planted_market(num_pairs=3, num_rows=120)
        return AssociationEngine.from_database(database, SINGLE_HEAD_CONFIG)

    def test_first_query_needs_no_shard_compile(self, tmp_path):
        engine = self.build_engine()
        reference = engine.dominators()
        path = tmp_path / "engine.json"
        engine.save(path)
        assert engine.sidecar_path(path).exists()

        restored = AssociationEngine.load(path)
        result = restored.dominators()
        counters = restored.counters
        assert counters.shard_compiles == 0
        assert counters.full_compiles == 0
        assert counters.index_compiles == 1  # one cheap stitch, no compiles
        assert result == reference

    def test_restored_engine_keeps_streaming_incrementally(self, tmp_path):
        database, dirty_rows = planted_market(num_pairs=3, num_rows=120)
        engine = AssociationEngine.from_database(database, SINGLE_HEAD_CONFIG)
        path = tmp_path / "engine.json"
        engine.save(path)

        restored = AssociationEngine.load(path)
        restored.index
        restored.append_rows(dirty_rows)
        restored.refresh()
        restored.index
        assert restored.counters.full_compiles == 0
        assert restored.counters.shard_compiles == 1  # only P's shard
        assert_queries_equal_fresh_compile(restored)

    def test_stale_sidecar_is_refused(self, tmp_path):
        engine = self.build_engine()
        path = tmp_path / "engine.json"
        engine.save(path)
        # Advance the model and re-save only the JSON: the sidecar on disk
        # now describes an older model version.
        engine.append_rows([[1] * len(engine.attributes)])
        engine.save(path, index_arrays=False)
        with pytest.raises(SnapshotVersionError):
            AssociationEngine.load(path)

    def test_count_colliding_sidecar_is_refused(self, tmp_path):
        """A stale sidecar from a different model with equal counts is refused.

        ``save(index_arrays=False)`` over a path that already carries
        another model's sidecar is exactly the hazard the stamp's
        ``model_crc32`` exists for: model version, row count, and edge
        count can all collide, the edge weights cannot.
        """
        rng = np.random.default_rng(3)

        def noisy_copy_db(seed):
            r = np.random.default_rng(seed)
            a = r.integers(0, 3, 100)
            b = np.where(r.random(100) < 0.9, a, r.integers(0, 3, 100))
            columns = {"A": a.tolist(), "B": b.tolist(), "C": r.integers(0, 3, 100).tolist()}
            return Database(
                list(columns),
                [[columns[k][i] for k in columns] for i in range(100)],
            )

        first = AssociationEngine.from_database(noisy_copy_db(1), SINGLE_HEAD_CONFIG)
        second = AssociationEngine.from_database(noisy_copy_db(2), SINGLE_HEAD_CONFIG)
        assert first.hypergraph.num_edges == second.hypergraph.num_edges
        assert first.num_observations == second.num_observations
        path = tmp_path / "engine.json"
        first.save(path)
        second.save(path, index_arrays=False)  # stale sidecar left behind
        with pytest.raises(SnapshotVersionError, match="model_crc32"):
            AssociationEngine.load(path)

    def test_sidecar_without_stamp_is_refused(self, tmp_path):
        engine = self.build_engine()
        path = tmp_path / "engine.json"
        engine.save(path)
        # Strip the stamp from the JSON, keeping the sidecar: unverifiable.
        import json

        data = json.loads(path.read_text())
        del data["index_stamp"]
        path.write_text(json.dumps(data))
        with pytest.raises(SnapshotVersionError):
            AssociationEngine.load(path)

    def test_save_without_arrays_round_trips_with_full_compile(self, tmp_path):
        engine = self.build_engine()
        reference = engine.dominators()
        path = tmp_path / "engine.json"
        engine.save(path, index_arrays=False)
        assert not engine.sidecar_path(path).exists()
        restored = AssociationEngine.load(path)
        assert restored.dominators() == reference
        assert restored.counters.full_compiles == 1
