"""The engine's compiled query index: sharing, stamping, and recompiles."""

from __future__ import annotations

import pytest

from repro.core.config import CONFIG_C1
from repro.core.similarity import combined_similarity
from repro.data.discretization import discretize_panel
from repro.data.market import MarketConfig, SectorSpec, SyntheticMarket
from repro.engine import AssociationEngine


@pytest.fixture(scope="module")
def market_db():
    sectors = [
        SectorSpec("Energy", 3, 1, producer_fraction=0.34),
        SectorSpec("Technology", 3, 1, producer_fraction=0.34),
    ]
    panel = SyntheticMarket(MarketConfig(num_days=70, sectors=sectors, seed=23)).generate()
    return discretize_panel(panel, k=3)


class TestCompiledIndex:
    def test_index_vertex_order_is_attribute_order(self, market_db):
        engine = AssociationEngine.from_database(market_db, CONFIG_C1)
        assert engine.index.vertices == engine.attributes

    def test_index_is_shared_between_queries(self, market_db):
        engine = AssociationEngine.from_database(market_db, CONFIG_C1)
        first = engine.index
        a, b = engine.attributes[:2]
        engine.similarity(a, b)
        engine.clusters(t=2)
        assert engine.index is first
        assert engine.counters.index_compiles == 1

    def test_append_invalidates_index(self, market_db):
        engine = AssociationEngine.from_database(market_db, CONFIG_C1)
        before = engine.index
        engine.append_row(market_db.to_rows()[0])
        after = engine.index
        assert after is not before
        assert engine.counters.index_compiles == 2

    def test_index_queries_match_reference_paths(self, market_db):
        engine = AssociationEngine.from_database(market_db, CONFIG_C1)
        for a in engine.attributes[:3]:
            for b in engine.attributes[3:6]:
                assert engine.similarity(a, b) == combined_similarity(
                    engine.hypergraph, a, b
                )
