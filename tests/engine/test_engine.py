"""Unit tests for the incremental engine: appends, refresh scoping, caching."""

from __future__ import annotations

import pytest

from repro.core.classifier import AssociationBasedClassifier
from repro.core.config import CONFIG_C1
from repro.core.dominators import dominator_set_cover, threshold_by_top_fraction
from repro.core.similarity import combined_similarity
from repro.data.database import Database
from repro.data.discretization import discretize_panel
from repro.data.market import MarketConfig, SectorSpec, SyntheticMarket
from repro.engine import AssociationEngine
from repro.exceptions import ConfigurationError, EngineError


@pytest.fixture(scope="module")
def market_db() -> Database:
    sectors = [
        SectorSpec("Energy", 3, 1, producer_fraction=0.34),
        SectorSpec("Technology", 4, 2, producer_fraction=0.25),
    ]
    panel = SyntheticMarket(MarketConfig(num_days=80, sectors=sectors, seed=13)).generate()
    return discretize_panel(panel, k=3)


@pytest.fixture()
def engine(market_db) -> AssociationEngine:
    return AssociationEngine.from_database(market_db, CONFIG_C1)


class TestConstruction:
    def test_needs_two_attributes(self):
        with pytest.raises(ConfigurationError):
            AssociationEngine(("only",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ConfigurationError):
            AssociationEngine(("A", "A"))

    def test_unknown_heads_rejected(self):
        with pytest.raises(ConfigurationError):
            AssociationEngine(("A", "B"), heads=["Z"])

    def test_empty_heads_rejected(self):
        with pytest.raises(ConfigurationError):
            AssociationEngine(("A", "B"), heads=[])


class TestAppends:
    def test_append_row_mappings_and_sequences(self):
        engine = AssociationEngine(("A", "B"))
        assert engine.append_row([1, 2]) == 1
        assert engine.append_row({"A": 2, "B": 1}) == 1
        assert engine.num_observations == 2

    def test_append_database_schema_mismatch(self, engine):
        other = Database(["X", "Y"], [[1, 2]])
        with pytest.raises(EngineError):
            engine.append_rows(other)

    def test_append_malformed_row_raises_engine_error(self, engine):
        with pytest.raises(EngineError):
            engine.append_rows([[1, 2]])  # wrong arity for the market schema
        with pytest.raises(EngineError):
            engine.append_rows([{"not-an-attribute": 1}])

    def test_append_marks_heads_dirty(self, engine):
        engine.refresh()
        assert engine.dirty_attributes == frozenset()
        engine.append_row([1] * len(engine.attributes))
        assert engine.dirty_attributes == frozenset(engine.head_attributes)

    def test_empty_append_is_noop(self, engine):
        engine.refresh()
        version = engine.model_version
        assert engine.append_rows([]) == 0
        assert engine.dirty_attributes == frozenset()
        assert engine.model_version == version


class TestRefreshScoping:
    def test_partial_refresh_cleans_only_requested_heads(self, engine, market_db):
        engine.refresh()
        engine.append_row(market_db.to_rows()[0])
        target = market_db.attributes[0]
        engine.refresh([target])
        assert target not in engine.dirty_attributes
        assert len(engine.dirty_attributes) == len(market_db.attributes) - 1

    def test_refresh_returns_changed_attributes(self, engine, market_db):
        engine.refresh()
        changed = engine.refresh()
        assert changed == frozenset()
        engine.append_row(market_db.to_rows()[1])
        changed = engine.refresh()
        # Re-weighted edges touch (at least) every attribute with an edge.
        assert changed

    def test_versions_advance_only_on_change(self, engine, market_db):
        engine.refresh()
        before = engine.model_version
        engine.refresh()
        assert engine.model_version == before
        engine.append_row(market_db.to_rows()[2])
        engine.refresh()
        assert engine.model_version > before


class TestQueries:
    def test_similarity_matches_direct_computation(self, engine, market_db):
        a, b = market_db.attributes[0], market_db.attributes[1]
        expected = combined_similarity(engine.hypergraph, a, b)
        assert engine.similarity(a, b) == pytest.approx(expected)
        assert engine.similarity(b, a) == pytest.approx(expected)
        assert engine.similarity(a, a) == 1.0

    def test_similarity_unknown_attribute(self, engine):
        with pytest.raises(EngineError):
            engine.similarity("nope", engine.attributes[0])

    def test_neighbors_sorted_and_limited(self, engine):
        a = engine.attributes[0]
        ranked = engine.neighbors(a, limit=3)
        assert len(ranked) <= 3
        sims = [s for _, s in ranked]
        assert sims == sorted(sims, reverse=True)
        assert all(other != a for other, _ in ranked)

    def test_clusters_cover_all_attributes(self, engine):
        clustering = engine.clusters(t=3)
        members = [m for cluster in clustering.clusters.values() for m in cluster]
        assert sorted(members, key=str) == sorted(engine.attributes, key=str)

    def test_dominators_match_direct_computation(self, engine):
        direct = dominator_set_cover(
            threshold_by_top_fraction(engine.hypergraph, 0.4)
        )
        via_engine = engine.dominators(algorithm="set-cover", top_fraction=0.4)
        assert via_engine.dominators == direct.dominators

    def test_dominators_unknown_algorithm(self, engine):
        with pytest.raises(ConfigurationError):
            engine.dominators(algorithm="magic")

    def test_classify_matches_direct_classifier(self, engine, market_db):
        row = market_db.row(0)
        evidence_attrs = list(market_db.attributes[:3])
        evidence = {a: row[a] for a in evidence_attrs}
        target = market_db.attributes[3]
        direct = AssociationBasedClassifier(engine.hypergraph).predict_attribute(
            target, evidence
        )
        prediction = engine.classify(evidence, targets=[target])[target]
        assert prediction == direct

    def test_classify_refreshes_only_targets(self, engine, market_db):
        engine.refresh()
        engine.append_row(market_db.to_rows()[0])
        row = market_db.row(1)
        target = market_db.attributes[-1]
        evidence = {a: row[a] for a in market_db.attributes[:3]}
        engine.classify(evidence, targets=[target])
        assert target not in engine.dirty_attributes
        assert len(engine.dirty_attributes) == len(market_db.attributes) - 1


class TestCaching:
    def test_repeated_similarity_hits_cache(self, engine):
        a, b = engine.attributes[0], engine.attributes[1]
        engine.similarity(a, b)
        before = engine.cache_stats
        engine.similarity(a, b)
        engine.similarity(b, a)  # canonicalized to the same key
        after = engine.cache_stats
        assert after.hits == before.hits + 2
        assert after.misses == before.misses

    def test_append_invalidates_affected_similarity(self, engine, market_db):
        a, b = engine.attributes[0], engine.attributes[1]
        engine.similarity(a, b)
        engine.append_row(market_db.to_rows()[0])
        before = engine.cache_stats
        engine.similarity(a, b)
        after = engine.cache_stats
        assert after.misses == before.misses + 1

    def test_cached_results_equal_fresh_results(self, engine):
        a, b = engine.attributes[2], engine.attributes[3]
        first = engine.similarity(a, b)
        second = engine.similarity(a, b)
        assert first == second
        d1 = engine.dominators(top_fraction=0.4)
        d2 = engine.dominators(top_fraction=0.4)
        assert d1 is d2  # served from cache, not recomputed


class TestCounters:
    def test_counters_track_increments_and_rebuilds(self, market_db):
        engine = AssociationEngine(market_db.attributes, CONFIG_C1)
        rows = market_db.to_rows()
        engine.append_rows(rows[:40])
        engine.refresh()
        built = engine.counters.table_rebuilds
        assert built > 0
        assert engine.counters.table_increments == 0
        engine.append_row(rows[40])
        engine.refresh()
        assert engine.counters.table_rebuilds == built  # no rebuilds, only bumps
        assert engine.counters.table_increments > 0
        assert engine.counters.appended_rows == 41
