"""Tests for the append-only encoded row store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.store import EncodedRowStore
from repro.exceptions import SchemaError


class TestAppend:
    def test_append_sequences_and_mappings(self):
        store = EncodedRowStore(("A", "B"))
        added, grew = store.append([[1, 2], {"A": 2, "B": 1}])
        assert (added, grew) == (2, True)
        assert store.num_rows == 2
        assert store.row_values(0) == {"A": 1, "B": 2}
        assert store.row_values(1) == {"A": 2, "B": 1}

    def test_wrong_arity_rejected(self):
        store = EncodedRowStore(("A", "B"))
        with pytest.raises(SchemaError):
            store.append([[1, 2, 3]])

    def test_missing_mapping_key_rejected(self):
        store = EncodedRowStore(("A", "B"))
        with pytest.raises(SchemaError):
            store.append([{"A": 1}])

    def test_capacity_growth_preserves_rows(self):
        store = EncodedRowStore(("A",), values=[0, 1])
        rows = [[i % 2] for i in range(500)]
        store.append(rows)
        assert store.num_rows == 500
        assert store.codes("A").tolist() == [i % 2 for i in range(500)]


class TestDomain:
    def test_domain_sorted_by_str(self):
        store = EncodedRowStore(("A",), values=[3, 1, 2])
        assert store.domain == (1, 2, 3)
        assert store.encode(2) == 1
        assert store.decode(0) == 1

    def test_domain_growth_recodes_existing_rows(self):
        store = EncodedRowStore(("A", "B"))
        store.append([[2, 3]])
        codes_before = store.codes("A").tolist()
        assert codes_before == [0]  # domain (2, 3): code(2) = 0
        generation = store.generation
        _, grew = store.append([[1, 1]])
        assert grew
        assert store.generation == generation + 1
        # Domain is now (1, 2, 3): the old row's 2 must be recoded to 1.
        assert store.domain == (1, 2, 3)
        assert store.codes("A").tolist() == [1, 0]
        assert store.to_database().to_rows() == [[2, 3], [1, 1]]

    def test_views_are_read_only(self):
        store = EncodedRowStore(("A",), values=[1])
        store.append([[1]])
        view = store.codes("A")
        with pytest.raises(ValueError):
            view[0] = 5

    def test_unknown_attribute(self):
        store = EncodedRowStore(("A",))
        with pytest.raises(SchemaError):
            store.codes("B")

    def test_encode_unknown_value(self):
        store = EncodedRowStore(("A",), values=[1])
        with pytest.raises(SchemaError):
            store.encode(99)


class TestSnapshotCodec:
    def test_from_codes_round_trip(self):
        store = EncodedRowStore(("A", "B"), values=[1, 2, 3])
        store.append([[1, 3], [2, 2], [3, 1]])
        rebuilt = EncodedRowStore.from_codes(
            store.attributes, store.domain, store.encoded_columns()
        )
        assert rebuilt.num_rows == store.num_rows
        assert rebuilt.domain == store.domain
        for a in store.attributes:
            assert np.array_equal(rebuilt.codes(a), store.codes(a))

    def test_from_codes_rejects_out_of_domain(self):
        with pytest.raises(SchemaError):
            EncodedRowStore.from_codes(("A",), [1, 2], {"A": [0, 7]})

    def test_from_codes_rejects_ragged_columns(self):
        with pytest.raises(SchemaError):
            EncodedRowStore.from_codes(("A", "B"), [1], {"A": [0], "B": [0, 0]})
