"""Snapshot round-trips and the streaming replay workload."""

from __future__ import annotations

import json

import pytest

from repro.core.config import CONFIG_C1
from repro.data.discretization import discretize_panel
from repro.data.market import MarketConfig, SectorSpec, SyntheticMarket
from repro.engine import AssociationEngine, SNAPSHOT_FORMAT, run_streaming_replay
from repro.exceptions import ConfigurationError, EngineError


@pytest.fixture(scope="module")
def tiny_panel():
    sectors = [
        SectorSpec("Energy", 3, 1, producer_fraction=0.34),
        SectorSpec("Technology", 3, 1, producer_fraction=0.34),
    ]
    return SyntheticMarket(MarketConfig(num_days=70, sectors=sectors, seed=21)).generate()


@pytest.fixture(scope="module")
def tiny_db(tiny_panel):
    return discretize_panel(tiny_panel, k=3)


class TestSnapshot:
    def test_save_load_round_trip(self, tiny_db, tmp_path):
        engine = AssociationEngine.from_database(tiny_db, CONFIG_C1)
        path = tmp_path / "engine.json"
        engine.save(path)

        restored = AssociationEngine.load(path)
        assert restored.num_observations == engine.num_observations
        assert restored.config == engine.config
        original_edges = {e.key(): e for e in engine.hypergraph.edges()}
        restored_edges = {e.key(): e for e in restored.hypergraph.edges()}
        assert original_edges.keys() == restored_edges.keys()
        for key, edge in original_edges.items():
            assert restored_edges[key].weight == edge.weight
            assert restored_edges[key].payload == edge.payload
        assert restored.stats() == engine.stats()

    def test_restored_engine_keeps_streaming(self, tiny_db, tmp_path):
        """A restored engine must continue appending with exact parity."""
        rows = tiny_db.to_rows()
        half = len(rows) // 2
        engine = AssociationEngine(tiny_db.attributes, CONFIG_C1)
        engine.append_rows(rows[:half])
        path = tmp_path / "engine.json"
        engine.save(path)

        restored = AssociationEngine.load(path)
        engine.append_rows(rows[half:])
        restored.append_rows(rows[half:])
        assert {e.key(): e.weight for e in engine.hypergraph.edges()} == {
            e.key(): e.weight for e in restored.hypergraph.edges()
        }
        assert engine.stats() == restored.stats()

    def test_snapshot_format_is_stamped(self, tiny_db):
        snapshot = AssociationEngine.from_database(tiny_db, CONFIG_C1).to_snapshot()
        assert snapshot["format"] == SNAPSHOT_FORMAT
        json.dumps(snapshot)  # must be JSON-serializable as-is

    def test_unknown_format_rejected(self):
        with pytest.raises(EngineError):
            AssociationEngine.from_snapshot({"format": "something-else"})

    def test_heads_restriction_survives_round_trip(self, tiny_db, tmp_path):
        heads = list(tiny_db.attributes[:2])
        engine = AssociationEngine.from_database(tiny_db, CONFIG_C1, heads=heads)
        path = tmp_path / "engine.json"
        engine.save(path)
        restored = AssociationEngine.load(path)
        assert restored.head_attributes == tuple(heads)
        assert all(
            edge.head <= set(heads) for edge in restored.hypergraph.edges()
        )


class TestStreamingReplay:
    def test_replay_reports_parity_and_timings(self, tiny_panel):
        result = run_streaming_replay(
            tiny_panel, warmup_fraction=0.6, rebuild_samples=2, pair_limit=10
        )
        assert result.parity_ok
        assert result.streamed_days > 0
        assert result.incremental_seconds > 0.0
        assert result.rebuild_seconds > 0.0
        assert result.final_edges > 0
        assert 0.0 <= result.cache_hit_rate <= 1.0
        rows = result.rows()
        metrics = {row.metric for row in rows}
        assert {"append_speedup", "query_speedup", "parity_with_batch"} <= metrics

    def test_replay_rejects_bad_warmup(self, tiny_panel):
        with pytest.raises(ConfigurationError):
            run_streaming_replay(tiny_panel, warmup_fraction=1.5)
        with pytest.raises(ConfigurationError):
            run_streaming_replay(tiny_panel, rebuild_samples=0)
