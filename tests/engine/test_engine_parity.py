"""Engine/batch parity: incremental maintenance must equal a fresh build.

The acceptance property of the incremental engine is that after any
sequence of appends its hypergraph is *identical* to what
:func:`build_association_hypergraph` produces on the concatenated rows —
the exact same edge set, weights within 1e-9 (in practice bit-identical),
equal association-table payloads, and equal :class:`BuildStats`.
"""

from __future__ import annotations

import pytest

from repro.core.builder import AssociationHypergraphBuilder
from repro.core.config import CONFIG_C1, CONFIG_C2
from repro.data.database import Database
from repro.data.discretization import discretize_panel
from repro.data.market import MarketConfig, SectorSpec, SyntheticMarket
from repro.engine import AssociationEngine


def market_database(k: int, num_days: int = 90, seed: int = 17) -> Database:
    sectors = [
        SectorSpec("Energy", 3, 1, producer_fraction=0.34),
        SectorSpec("Technology", 4, 2, producer_fraction=0.25),
        SectorSpec("Financial", 3, 1, producer_fraction=0.34),
    ]
    panel = SyntheticMarket(
        MarketConfig(num_days=num_days, sectors=sectors, seed=seed)
    ).generate()
    return discretize_panel(panel, k=k)


def assert_hypergraphs_equal(engine_graph, batch_graph, check_payloads=True):
    assert engine_graph.vertices == batch_graph.vertices
    engine_edges = {e.key(): e for e in engine_graph.edges()}
    batch_edges = {e.key(): e for e in batch_graph.edges()}
    assert engine_edges.keys() == batch_edges.keys()
    for key, batch_edge in batch_edges.items():
        engine_edge = engine_edges[key]
        assert engine_edge.weight == pytest.approx(batch_edge.weight, abs=1e-9)
        if check_payloads:
            assert engine_edge.payload == batch_edge.payload


class TestOneByOneAppendParity:
    @pytest.mark.parametrize("config", [CONFIG_C1, CONFIG_C2], ids=lambda c: c.name)
    def test_row_at_a_time_equals_batch_build(self, config):
        """Appending rows one at a time (with interleaved refreshes) ends in
        exactly the state a from-scratch batch build reaches."""
        database = market_database(k=config.k)
        rows = database.to_rows()

        engine = AssociationEngine(database.attributes, config)
        for i, row in enumerate(rows):
            engine.append_row(row)
            if i % 7 == 0:  # interleave eager refreshes with lazy stretches
                engine.refresh()

        builder = AssociationHypergraphBuilder(config)
        batch = builder.build(database)

        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == builder.last_stats

    @pytest.mark.parametrize("config", [CONFIG_C1, CONFIG_C2], ids=lambda c: c.name)
    def test_chunked_appends_equal_batch_build(self, config):
        database = market_database(k=config.k, num_days=70, seed=3)
        rows = database.to_rows()
        engine = AssociationEngine(database.attributes, config)
        for start in range(0, len(rows), 13):
            engine.append_rows(rows[start : start + 13])
            engine.refresh()

        builder = AssociationHypergraphBuilder(config)
        batch = builder.build(database)
        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == builder.last_stats

    def test_from_database_seed_plus_appends(self):
        database = market_database(k=3, num_days=80, seed=9)
        seed_db = database.slice_rows(0, 40)
        engine = AssociationEngine.from_database(seed_db, CONFIG_C1)
        for row in database.to_rows()[40:]:
            engine.append_row(row)
            engine.refresh()

        builder = AssociationHypergraphBuilder(CONFIG_C1)
        batch = builder.build(database)
        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == builder.last_stats


class TestParityCornerCases:
    def test_domain_growth_mid_stream(self):
        """Rows may introduce values never seen before; the store recodes and
        the final state still matches the batch build."""
        attributes = ("A", "B", "C")
        rows = [
            [1, 1, 2],
            [1, 2, 2],
            [2, 1, 1],
            [3, 3, 1],  # value 3 first appears here
            [1, 3, 2],
            [2, 2, 3],
            [3, 1, 1],
            [1, 1, 1],
        ]
        engine = AssociationEngine(attributes, CONFIG_C1.with_overrides(k=2))
        for row in rows:
            engine.append_row(row)
            engine.refresh()
        batch_builder = AssociationHypergraphBuilder(CONFIG_C1.with_overrides(k=2))
        batch = batch_builder.build(Database(attributes, rows))
        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == batch_builder.last_stats

    def test_heads_restriction_parity(self):
        database = market_database(k=3, num_days=60, seed=5)
        heads = list(database.attributes[:3])
        engine = AssociationEngine(database.attributes, CONFIG_C1, heads=heads)
        engine.append_rows(database)
        builder = AssociationHypergraphBuilder(CONFIG_C1)
        batch = builder.build(database, heads=heads)
        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == builder.last_stats

    def test_max_tail_candidates_parity(self):
        """Under the candidate cap the batch builder iterates an ACV-sorted
        pool; payloads must still match it exactly (the engine permutes its
        canonical count arrays back to the pool's tail order)."""
        config = CONFIG_C1.with_overrides(max_tail_candidates=4)
        database = market_database(k=3, num_days=60, seed=5)
        engine = AssociationEngine(database.attributes, config)
        for row in database.to_rows():
            engine.append_row(row)
            engine.refresh()
        builder = AssociationHypergraphBuilder(config)
        batch = builder.build(database)
        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == builder.last_stats

    def test_no_hyperedges_config_parity(self):
        config = CONFIG_C1.with_overrides(include_hyperedges=False)
        database = market_database(k=3, num_days=50, seed=2)
        engine = AssociationEngine.from_database(database, config)
        builder = AssociationHypergraphBuilder(config)
        batch = builder.build(database)
        assert_hypergraphs_equal(engine.hypergraph, batch)
        assert engine.stats() == builder.last_stats

    def test_empty_engine_has_no_edges(self):
        engine = AssociationEngine(("A", "B", "C"))
        assert engine.hypergraph.num_edges == 0
        assert engine.stats().directed_edges == 0
        assert engine.stats().num_observations == 0
