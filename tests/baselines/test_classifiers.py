"""Tests for the perceptron, logistic regression, linear SVM, and MLP baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.logistic import LogisticRegressionClassifier
from repro.baselines.metrics import accuracy, confusion_matrix, per_class_accuracy
from repro.baselines.mlp import MLPClassifier
from repro.baselines.perceptron import Perceptron
from repro.baselines.svm import LinearSVMClassifier
from repro.exceptions import ConfigurationError, NotFittedError


def linearly_separable(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, size=(n, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


def three_class_blobs(n_per_class=30, seed=1):
    rng = np.random.default_rng(seed)
    centers = [(0, 0), (4, 0), (0, 4)]
    X = np.vstack([rng.normal(c, 0.5, size=(n_per_class, 2)) for c in centers])
    labels = ["red"] * n_per_class + ["green"] * n_per_class + ["blue"] * n_per_class
    return X, labels


class TestPerceptron:
    def test_learns_separable_data(self):
        X, y = linearly_separable()
        model = Perceptron(max_epochs=200).fit(X, y)
        assert model.converged
        assert accuracy(list(y), list(model.predict(X))) == 1.0

    def test_non_separable_terminates(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0, 1, 0, 1])
        model = Perceptron(max_epochs=5).fit(X, y)
        assert not model.converged

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            Perceptron().predict(np.zeros((2, 2)))

    def test_invalid_labels(self):
        with pytest.raises(ConfigurationError):
            Perceptron().fit(np.zeros((2, 1)), np.array([1, 5]))

    def test_invalid_epochs(self):
        with pytest.raises(ConfigurationError):
            Perceptron(max_epochs=0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            Perceptron().fit(np.zeros((3, 2)), np.array([0, 1]))


class TestLogisticRegression:
    def test_multiclass_blobs(self):
        X, labels = three_class_blobs()
        model = LogisticRegressionClassifier(epochs=300).fit(X, labels)
        assert accuracy(labels, model.predict(X)) >= 0.95

    def test_probabilities_sum_to_one(self):
        X, labels = three_class_blobs()
        model = LogisticRegressionClassifier(epochs=50).fit(X, labels)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities.shape == (len(labels), 3)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegressionClassifier().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            LogisticRegressionClassifier(learning_rate=0)

    def test_string_labels_preserved(self):
        X, labels = three_class_blobs()
        model = LogisticRegressionClassifier(epochs=50).fit(X, labels)
        assert set(model.predict(X)) <= {"red", "green", "blue"}


class TestLinearSVM:
    def test_binary_separable(self):
        X, y = linearly_separable()
        model = LinearSVMClassifier(epochs=40).fit(X, list(y))
        assert accuracy(list(y), model.predict(X)) >= 0.95

    def test_multiclass_blobs(self):
        X, labels = three_class_blobs()
        model = LinearSVMClassifier(epochs=40).fit(X, labels)
        assert accuracy(labels, model.predict(X)) >= 0.9

    def test_decision_function_shape(self):
        X, labels = three_class_blobs()
        model = LinearSVMClassifier(epochs=10).fit(X, labels)
        assert model.decision_function(X).shape == (len(labels), 3)

    def test_deterministic_for_seed(self):
        X, labels = three_class_blobs()
        a = LinearSVMClassifier(epochs=10, seed=3).fit(X, labels).predict(X)
        b = LinearSVMClassifier(epochs=10, seed=3).fit(X, labels).predict(X)
        assert a == b

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearSVMClassifier().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            LinearSVMClassifier(regularization=0)


class TestMLP:
    def test_multiclass_blobs(self):
        X, labels = three_class_blobs()
        model = MLPClassifier(hidden_units=8, epochs=300, seed=0).fit(X, labels)
        assert accuracy(labels, model.predict(X)) >= 0.95

    def test_learns_xor(self):
        """A hidden layer lets the MLP solve a problem linear models cannot."""
        X = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 10)
        y = [int(a != b) for a, b in X]
        model = MLPClassifier(hidden_units=8, epochs=3000, learning_rate=0.5, seed=1).fit(X, y)
        assert accuracy(y, model.predict(X)) == 1.0

    def test_probabilities_sum_to_one(self):
        X, labels = three_class_blobs()
        model = MLPClassifier(epochs=50).fit(X, labels)
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(hidden_units=0)

    def test_deterministic_for_seed(self):
        X, labels = three_class_blobs()
        a = MLPClassifier(epochs=50, seed=4).fit(X, labels).predict(X)
        b = MLPClassifier(epochs=50, seed=4).fit(X, labels).predict(X)
        assert a == b


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy([], []) == 0.0

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_confusion_matrix(self):
        counts = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert counts[("a", "a")] == 1
        assert counts[("a", "b")] == 1
        assert counts[("b", "b")] == 1

    def test_per_class_accuracy(self):
        per_class = per_class_accuracy([1, 1, 2, 2], [1, 2, 2, 2])
        assert per_class[1] == pytest.approx(0.5)
        assert per_class[2] == pytest.approx(1.0)
