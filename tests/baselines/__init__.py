"""Test package marker (keeps duplicate test basenames importable)."""
