"""Tests for Gonzalez t-clustering (Algorithm 2) and k-means (Algorithm 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kmeans import k_means
from repro.baselines.tclustering import clustering_diameter, t_clustering
from repro.exceptions import ConfigurationError


def euclidean(points):
    def distance(a, b):
        return math.dist(points[a], points[b])

    return distance


class TestTClustering:
    def two_blobs(self):
        points = {
            "a1": (0.0, 0.0),
            "a2": (0.1, 0.0),
            "a3": (0.0, 0.1),
            "b1": (5.0, 5.0),
            "b2": (5.1, 5.0),
            "b3": (5.0, 5.1),
        }
        return points, euclidean(points)

    def test_recovers_blobs(self):
        points, distance = self.two_blobs()
        centers, assignment = t_clustering(list(points), distance, t=2)
        groups = {}
        for point, center in assignment.items():
            groups.setdefault(center, set()).add(point)
        assert {frozenset(g) for g in groups.values()} == {
            frozenset({"a1", "a2", "a3"}),
            frozenset({"b1", "b2", "b3"}),
        }

    def test_centers_are_points(self):
        points, distance = self.two_blobs()
        centers, _ = t_clustering(list(points), distance, t=3)
        assert set(centers) <= set(points)
        assert len(set(centers)) == 3

    def test_first_center_respected(self):
        points, distance = self.two_blobs()
        centers, _ = t_clustering(list(points), distance, t=2, first_center="b1")
        assert centers[0] == "b1"

    def test_t_one_puts_everything_in_one_cluster(self):
        points, distance = self.two_blobs()
        _, assignment = t_clustering(list(points), distance, t=1)
        assert len(set(assignment.values())) == 1

    def test_invalid_t(self):
        points, distance = self.two_blobs()
        with pytest.raises(ConfigurationError):
            t_clustering(list(points), distance, t=0)
        with pytest.raises(ConfigurationError):
            t_clustering(list(points), distance, t=99)

    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            t_clustering([], lambda a, b: 0.0, t=1)

    def test_unknown_first_center_rejected(self):
        points, distance = self.two_blobs()
        with pytest.raises(ConfigurationError):
            t_clustering(list(points), distance, t=2, first_center="nope")

    def test_2_approximation_on_blobs(self):
        """Theorem 2.7: the greedy diameter is within 2x of the optimal diameter."""
        points, distance = self.two_blobs()
        optimal_diameter = max(
            distance(a, b)
            for group in ({"a1", "a2", "a3"}, {"b1", "b2", "b3"})
            for a in group
            for b in group
        )
        _, assignment = t_clustering(list(points), distance, t=2)
        assert clustering_diameter(assignment, distance) <= 2 * optimal_diameter + 1e-9

    @given(
        coordinates=st.lists(
            st.tuples(st.floats(-5, 5, allow_nan=False), st.floats(-5, 5, allow_nan=False)),
            min_size=2,
            max_size=20,
            unique=True,
        ),
        t=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_assignment_is_to_closest_center(self, coordinates, t):
        points = {f"p{i}": xy for i, xy in enumerate(coordinates)}
        t = min(t, len(points))
        distance = euclidean(points)
        centers, assignment = t_clustering(list(points), distance, t=t)
        for point, center in assignment.items():
            best = min(distance(point, c) for c in centers)
            assert distance(point, center) == pytest.approx(best)


class TestKMeans:
    def blob_data(self):
        rng = np.random.default_rng(0)
        a = rng.normal((0, 0), 0.2, size=(20, 2))
        b = rng.normal((5, 5), 0.2, size=(20, 2))
        return np.vstack([a, b])

    def test_two_clusters_recovered(self):
        data = self.blob_data()
        result = k_means(data, k=2, seed=1)
        labels_first = set(result.labels[:20])
        labels_second = set(result.labels[20:])
        assert len(labels_first) == 1
        assert len(labels_second) == 1
        assert labels_first != labels_second

    def test_inertia_decreases_with_more_clusters(self):
        data = self.blob_data()
        assert k_means(data, k=4, seed=1).inertia <= k_means(data, k=1, seed=1).inertia

    def test_labels_shape_and_range(self):
        data = self.blob_data()
        result = k_means(data, k=3, seed=2)
        assert result.labels.shape == (40,)
        assert set(result.labels) <= {0, 1, 2}

    def test_deterministic_for_seed(self):
        data = self.blob_data()
        a = k_means(data, k=2, seed=7)
        b = k_means(data, k=2, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            k_means(self.blob_data(), k=0)
        with pytest.raises(ConfigurationError):
            k_means(self.blob_data(), k=41)

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            k_means(np.zeros(5), k=2)

    def test_k_equals_n(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        result = k_means(data, k=3, seed=0)
        assert result.inertia == pytest.approx(0.0)
