"""Tests for the greedy set cover (Algorithm 1) and graph dominating set baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dominating_set import greedy_dominating_set, is_dominating_set
from repro.baselines.set_cover import greedy_set_cover
from repro.exceptions import ConfigurationError


class TestGreedySetCover:
    def test_simple_cover(self):
        subsets = {"s1": {1, 2, 3}, "s2": {3, 4}, "s3": {4, 5, 6}}
        chosen = greedy_set_cover([1, 2, 3, 4, 5, 6], subsets)
        covered = set().union(*(subsets[key] for key in chosen))
        assert covered >= {1, 2, 3, 4, 5, 6}

    def test_picks_largest_first(self):
        subsets = {"big": {1, 2, 3, 4}, "small": {1, 2}, "rest": {5}}
        chosen = greedy_set_cover([1, 2, 3, 4, 5], subsets)
        assert chosen[0] == "big"
        assert "small" not in chosen

    def test_sequence_input_uses_indices(self):
        chosen = greedy_set_cover([1, 2, 3], [{1, 2}, {3}])
        assert set(chosen) == {0, 1}

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_set_cover([1, 2, 99], {"a": {1, 2}})

    def test_empty_universe_needs_nothing(self):
        assert greedy_set_cover([], {"a": {1}}) == []

    @given(
        subsets=st.lists(
            st.sets(st.integers(0, 15), min_size=1, max_size=6), min_size=1, max_size=10
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_cover_always_covers_union(self, subsets):
        universe = set().union(*subsets)
        chosen = greedy_set_cover(universe, subsets)
        covered = set().union(*(subsets[i] for i in chosen))
        assert covered >= universe

    @given(
        subsets=st.lists(
            st.sets(st.integers(0, 12), min_size=1, max_size=5), min_size=1, max_size=8
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_logarithmic_approximation_bound(self, subsets):
        """|greedy cover| <= H_n * |optimal| <= H_n * |any cover|, and never exceeds the subset count."""
        universe = set().union(*subsets)
        chosen = greedy_set_cover(universe, subsets)
        assert len(chosen) <= len(subsets)
        assert len(set(chosen)) == len(chosen)


class TestGreedyDominatingSet:
    def star(self):
        vertices = ["hub", "a", "b", "c"]
        edges = [("hub", "a"), ("hub", "b"), ("hub", "c")]
        return vertices, edges

    def test_star_needs_only_hub(self):
        vertices, edges = self.star()
        dominators = greedy_dominating_set(vertices, edges)
        assert dominators == ["hub"]
        assert is_dominating_set(dominators, vertices, edges)

    def test_path_graph(self):
        vertices = ["a", "b", "c", "d", "e"]
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]
        dominators = greedy_dominating_set(vertices, edges)
        assert is_dominating_set(dominators, vertices, edges)
        assert len(dominators) <= 3

    def test_isolated_vertices_dominate_themselves(self):
        dominators = greedy_dominating_set(["x", "y"], [])
        assert set(dominators) == {"x", "y"}

    def test_is_dominating_set_negative(self):
        vertices, edges = self.star()
        assert not is_dominating_set(["a"], vertices, edges)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda e: e[0] != e[1]),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_result_always_dominates(self, edges):
        vertices = set(range(9))
        dominators = greedy_dominating_set(vertices, edges)
        assert is_dominating_set(dominators, vertices, edges)
